//! Top-k MPDS estimation (paper Algorithm 1).
//!
//! Sample θ possible worlds; in each, find **all** densest subgraphs and
//! increment their counters; return the k node sets with the highest
//! estimated densest subgraph probability `τ̂(U) = count(U) / θ` (an unbiased
//! estimator — paper Lemma 1; accuracy guarantees in [`crate::theory`]).
//!
//! The runnable entry point is [`crate::api::Query::mpds`] (single queries)
//! and [`crate::api::queryset::QuerySet`] (batches over one shared world
//! stream); this module keeps the result type and the ranking helpers.

use densest::DensityNotion;
use std::collections::HashMap;
use ugraph::{NodeId, NodeSet};

/// Configuration for the top-k MPDS estimator.
#[derive(Debug, Clone)]
pub struct MpdsConfig {
    /// Density notion ρ (edge / h-clique / pattern).
    pub notion: DensityNotion,
    /// Number of sampled possible worlds θ.
    pub theta: usize,
    /// How many top node sets to return.
    pub k: usize,
    /// Cap on densest subgraphs enumerated per world (they can explode —
    /// paper Table VIII; LastFM std-dev > 22 000).
    pub enumeration_cap: usize,
    /// `true` (paper default): count *all* densest subgraphs per world.
    /// `false`: count one uniformly random densest subgraph per world — the
    /// §VI-D ablation showing why "all" matters (up to 20× on LastFM).
    pub all_densest: bool,
    /// Use the §III-C heuristic (innermost core + denser peeling suffixes)
    /// instead of the exact enumeration. For large graphs / big patterns.
    pub heuristic: bool,
    /// Seed for the internal tie-breaking RNG (used by the `one densest`
    /// ablation mode).
    pub choice_seed: u64,
}

impl MpdsConfig {
    /// Paper-default configuration for a given notion, θ, and k.
    pub fn new(notion: DensityNotion, theta: usize, k: usize) -> Self {
        MpdsConfig {
            notion,
            theta,
            k,
            enumeration_cap: 100_000,
            all_densest: true,
            heuristic: false,
            choice_seed: 0x5eed,
        }
    }
}

/// Output of the estimator.
#[derive(Debug, Clone)]
pub struct MpdsResult {
    /// Top-k node sets with their estimated densest subgraph probability
    /// `τ̂`, sorted by `τ̂` descending (ties: smaller set first, then
    /// lexicographic — deterministic).
    pub top_k: Vec<(NodeSet, f64)>,
    /// Full candidate table: node set → number of worlds in which it was a
    /// densest subgraph.
    pub candidates: HashMap<NodeSet, u32>,
    /// Number of sampled worlds.
    pub theta: usize,
    /// Worlds with no instance of the notion (they contribute to no set).
    pub empty_worlds: usize,
    /// Number of densest subgraphs found in each world (paper Table VIII).
    pub densest_counts: Vec<usize>,
    /// Whether any world's enumeration hit the cap.
    pub truncated: bool,
}

impl MpdsResult {
    /// Estimated densest subgraph probability of an arbitrary node set.
    pub fn tau_hat(&self, nodes: &[NodeId]) -> f64 {
        let key: NodeSet = nodes.to_vec();
        *self.candidates.get(&key).unwrap_or(&0) as f64 / self.theta as f64
    }
}

/// Deterministically selects the k best candidates (shared by the builder
/// API's serial and parallel execution paths).
pub(crate) fn select_top_k(
    candidates: &HashMap<NodeSet, u32>,
    k: usize,
    theta: usize,
) -> Vec<(NodeSet, f64)> {
    let mut all: Vec<(&NodeSet, u32)> = candidates.iter().map(|(s, &c)| (s, c)).collect();
    all.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(a.0.len().cmp(&b.0.len()))
            .then(a.0.cmp(b.0))
    });
    all.into_iter()
        .take(k)
        .map(|(s, c)| (s.clone(), c as f64 / theta as f64))
        .collect()
}

/// The k best candidate *sets* under exactly [`select_top_k`]'s order, by
/// bounded insertion instead of a full sort — O(n·k) with no intermediate
/// allocation, cheap enough to call once per sampled world (the
/// `Stop::Stable` tracker does).
pub(crate) fn top_k_sets(candidates: &HashMap<NodeSet, u32>, k: usize) -> Vec<NodeSet> {
    if k == 0 {
        return Vec::new();
    }
    let before = |(xs, xc): (&NodeSet, u32), (ys, yc): (&NodeSet, u32)| -> bool {
        yc.cmp(&xc)
            .then(xs.len().cmp(&ys.len()))
            .then(xs.cmp(ys))
            .is_lt()
    };
    let mut top: Vec<(&NodeSet, u32)> = Vec::with_capacity(k + 1);
    for (s, &c) in candidates {
        if let Some(&last) = top.last() {
            if top.len() == k && !before((s, c), last) {
                continue;
            }
        }
        let pos = top.partition_point(|&entry| before(entry, (s, c)));
        top.insert(pos, (s, c));
        top.truncate(k);
    }
    top.into_iter().map(|(s, _)| s.clone()).collect()
}

/// Summary statistics of the per-world densest-subgraph counts, as reported
/// in the paper's Table VIII: `(mean, std, [q1, median, q3])`.
pub fn densest_count_stats(counts: &[usize]) -> (f64, f64, [usize; 3]) {
    assert!(!counts.is_empty());
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean) * (c as f64 - mean))
        .sum::<f64>()
        / n;
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f).round() as usize];
    (mean, var.sqrt(), [q(0.25), q(0.5), q(0.75)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Query, RunDetails};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sampling::MonteCarlo;
    use ugraph::UncertainGraph;

    /// The paper's Fig. 1 running example (matches Table I's probabilities).
    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn top_k_sets_matches_the_full_sort() {
        // Pseudo-random counts with heavy ties exercise every tie-break
        // (count, then length, then lexicographic).
        let mut candidates: HashMap<NodeSet, u32> = HashMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let len = 1 + (x % 4) as u32;
            let set: NodeSet = (0..len).map(|j| (i + j * 7) % 50).collect();
            let set = ugraph::nodeset::canonicalize(set);
            candidates.insert(set, (x >> 32) as u32 % 5);
        }
        for k in [0, 1, 3, 7, candidates.len(), candidates.len() + 5] {
            let fast = top_k_sets(&candidates, k);
            let slow: Vec<NodeSet> = select_top_k(&candidates, k, 1)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            assert_eq!(fast, slow, "k = {k}");
        }
    }

    /// The builder query equivalent to a legacy `MpdsConfig` invocation.
    fn query_for(cfg: &MpdsConfig) -> Query {
        Query::mpds(cfg.notion.clone())
            .theta(cfg.theta)
            .k(cfg.k)
            .enumeration_cap(cfg.enumeration_cap)
            .all_densest(cfg.all_densest)
            .heuristic(cfg.heuristic)
            .choice_seed(cfg.choice_seed)
    }

    fn run(g: &UncertainGraph, cfg: &MpdsConfig, seed: u64) -> MpdsResult {
        match query_for(cfg).seed(seed).run(g).unwrap().details {
            RunDetails::Mpds(r) => r,
            RunDetails::Nds(_) => unreachable!("Query::mpds produces MPDS details"),
        }
    }

    #[test]
    fn fig1_mpds_is_bd() {
        // Table I: DSP({B,D}) = 0.42 is the maximum; B = 1, D = 3.
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 4000, 1);
        let r = run(&g, &cfg, 42);
        assert_eq!(r.top_k.len(), 1);
        assert_eq!(r.top_k[0].0, vec![1, 3]);
        assert!((r.top_k[0].1 - 0.42).abs() < 0.03, "tau {}", r.top_k[0].1);
    }

    #[test]
    fn fig1_estimates_match_table1() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 8000, 10);
        let r = run(&g, &cfg, 7);
        // Table I DSP row: {A,B}=.07, {A,C}=.24, {B,D}=.42, {A,B,C}=.05,
        // {A,B,D}=.17, {A,B,C,D}=.28 (with A,B,C,D = 0,1,2,3).
        let close = |set: &[NodeId], want: f64| {
            let got = r.tau_hat(set);
            assert!((got - want).abs() < 0.025, "{set:?}: {got} vs {want}");
        };
        close(&[0, 1], 0.072);
        close(&[0, 2], 0.24);
        close(&[1, 3], 0.42);
        close(&[0, 1, 2], 0.048);
        close(&[0, 1, 3], 0.168);
        close(&[0, 1, 2, 3], 0.28);
    }

    #[test]
    fn empty_worlds_are_counted() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.1)]);
        let cfg = MpdsConfig::new(DensityNotion::Edge, 1000, 1);
        let r = run(&g, &cfg, 1);
        // ~90% of worlds have no edges.
        assert!(r.empty_worlds > 800);
        assert_eq!(r.densest_counts.len(), 1000);
        // The only candidate is {0,1} with tau ≈ 0.1.
        assert_eq!(r.top_k[0].0, vec![0, 1]);
        assert!((r.top_k[0].1 - 0.1).abs() < 0.03);
    }

    #[test]
    fn one_vs_all_mode() {
        // Two disjoint certain edges: every world has 3 densest subgraphs
        // ({0,1}, {2,3}, {0,1,2,3}). "All" mode gives each tau = 1; "one"
        // mode splits the mass.
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let mut cfg = MpdsConfig::new(DensityNotion::Edge, 300, 3);
        let all = run(&g, &cfg, 3);
        assert_eq!(all.top_k.len(), 3);
        for (_, tau) in &all.top_k {
            assert!((tau - 1.0).abs() < 1e-9);
        }
        cfg.all_densest = false;
        let one = run(&g, &cfg, 3);
        let total: f64 = one.top_k.iter().map(|(_, t)| t).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (_, tau) in &one.top_k {
            assert!(*tau < 0.6, "one-mode mass should split, got {tau}");
        }
    }

    #[test]
    fn clique_mpds_on_certain_triangle() {
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 0.5)],
        );
        let cfg = MpdsConfig::new(DensityNotion::Clique(3), 200, 1);
        let r = run(&g, &cfg, 5);
        assert_eq!(r.top_k[0].0, vec![0, 1, 2]);
        assert!((r.top_k[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heuristic_mode_runs() {
        let g = fig1();
        let mut cfg = MpdsConfig::new(DensityNotion::Edge, 500, 2);
        cfg.heuristic = true;
        let r = run(&g, &cfg, 11);
        assert!(!r.top_k.is_empty());
        // Heuristic candidates still have sane probabilities.
        for (_, tau) in &r.top_k {
            assert!(*tau <= 1.0 && *tau > 0.0);
        }
    }

    #[test]
    fn stats_helper() {
        let (mean, std, q) = densest_count_stats(&[1, 1, 1, 3]);
        assert!((mean - 1.5).abs() < 1e-12);
        assert!(std > 0.0);
        assert_eq!(q, [1, 1, 1]);
    }

    #[test]
    fn estimator_is_deterministic_given_seeds() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 200, 3);
        let a = run(&g, &cfg, 99);
        let b = run(&g, &cfg, 99);
        assert_eq!(a.top_k, b.top_k);
    }

    #[test]
    fn unbounded_control_matches_uncontrolled_run() {
        use crate::control::RunControl;
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 300, 3);
        let a = run(&g, &cfg, 17);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(17));
        let b = match query_for(&cfg)
            .control(RunControl::unbounded())
            .run_with_sampler(&g, &mut mc)
            .unwrap()
            .details
        {
            RunDetails::Mpds(r) => r,
            RunDetails::Nds(_) => unreachable!(),
        };
        assert_eq!(a.top_k, b.top_k);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn expired_deadline_interrupts_before_first_world() {
        use crate::api::ApiError;
        use crate::control::RunControl;
        use std::time::{Duration, Instant};
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 10_000, 1);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let ctrl = RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        let err = query_for(&cfg)
            .control(ctrl)
            .run_with_sampler(&g, &mut mc)
            .unwrap_err();
        match err {
            ApiError::Interrupted(i) => {
                assert_eq!(i.reason, crate::control::InterruptReason::DeadlineExceeded);
                assert_eq!(i.completed_worlds, 0);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn raised_cancel_flag_interrupts() {
        use crate::api::ApiError;
        use crate::control::RunControl;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 10_000, 1);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let flag = Arc::new(AtomicBool::new(true));
        flag.store(true, Ordering::Relaxed);
        let ctrl = RunControl::unbounded().with_cancel_flag(flag);
        let err = query_for(&cfg)
            .control(ctrl)
            .run_with_sampler(&g, &mut mc)
            .unwrap_err();
        match err {
            ApiError::Interrupted(i) => {
                assert_eq!(i.reason, crate::control::InterruptReason::Cancelled);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }
}
