//! Top-k Nucleus Densest Subgraphs (paper Algorithm 5).
//!
//! In large uncertain graphs every individual node set may have a vanishing
//! densest subgraph probability, so the paper instead ranks node sets by
//! their *densest subgraph containment probability* `γ(U)` (Def. 5): the
//! probability that `U` is contained in a densest subgraph of a possible
//! world. Because a node set is contained in some densest subgraph iff it is
//! contained in the **maximum-sized** one (footnote 5 / \[59\]), Algorithm 5
//! samples θ worlds, collects each world's maximum-sized densest subgraph as
//! a transaction, and mines the top-k *closed* node sets of size ≥ `l_m` by
//! support with TFP \[47\] — here, [`itemset::top_k_closed`].
//!
//! The runnable entry point is [`crate::api::Query::nds`] (single queries)
//! and [`crate::api::queryset::QuerySet`] (batches over one shared world
//! stream); this module keeps the result type.

use densest::DensityNotion;
use ugraph::{NodeId, NodeSet};

/// Configuration for the NDS estimator.
#[derive(Debug, Clone)]
pub struct NdsConfig {
    /// Density notion ρ (edge / h-clique / pattern).
    pub notion: DensityNotion,
    /// Number of sampled possible worlds θ.
    pub theta: usize,
    /// How many top closed node sets to return.
    pub k: usize,
    /// Minimum size `l_m` of a returned node set.
    pub min_size: usize,
    /// Use the §III-C heuristic per world instead of the exact maximum-sized
    /// densest subgraph (paper's Pattern-NDS on large graphs, and the
    /// Friendster experiment of Table XII).
    pub heuristic: bool,
    /// Cap on closed-itemset search nodes (safety valve; reported back).
    pub miner_node_cap: usize,
}

impl NdsConfig {
    /// Paper-default configuration.
    pub fn new(notion: DensityNotion, theta: usize, k: usize, min_size: usize) -> Self {
        NdsConfig {
            notion,
            theta,
            k,
            min_size,
            heuristic: false,
            miner_node_cap: 5_000_000,
        }
    }
}

/// Output of the NDS estimator.
#[derive(Debug, Clone)]
pub struct NdsResult {
    /// Top-k closed node sets with their estimated containment probability
    /// `γ̂`, sorted by `γ̂` descending.
    pub top_k: Vec<(NodeSet, f64)>,
    /// The transaction multiset: one maximum-sized densest subgraph per
    /// sampled world that had one.
    pub transactions: Vec<NodeSet>,
    /// Number of sampled worlds θ.
    pub theta: usize,
    /// Worlds with no instances (no densest subgraph).
    pub empty_worlds: usize,
    /// Whether the closed-itemset miner hit its node cap.
    pub miner_capped: bool,
}

impl NdsResult {
    /// Estimated containment probability `γ̂(U)` = fraction of transactions
    /// containing `U` (paper §IV).
    pub fn gamma_hat(&self, nodes: &[NodeId]) -> f64 {
        itemset::support_of(&self.transactions, nodes) as f64 / self.theta as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Query, RunDetails};
    use ugraph::UncertainGraph;

    /// The builder query equivalent to a legacy `NdsConfig` invocation.
    fn query_for(cfg: &NdsConfig) -> Query {
        Query::nds(cfg.notion.clone())
            .theta(cfg.theta)
            .k(cfg.k)
            .min_size(cfg.min_size)
            .heuristic(cfg.heuristic)
            .miner_node_cap(cfg.miner_node_cap)
    }

    fn run(g: &UncertainGraph, cfg: &NdsConfig, seed: u64) -> NdsResult {
        match query_for(cfg).seed(seed).run(g).unwrap().details {
            RunDetails::Nds(r) => r,
            RunDetails::Mpds(_) => unreachable!("Query::nds produces NDS details"),
        }
    }

    /// Fig. 1 example: Example 3 of the paper says γ({B,D}) = 0.7.
    #[test]
    fn fig1_gamma_bd() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
        let cfg = NdsConfig::new(DensityNotion::Edge, 6000, 5, 2);
        let r = run(&g, &cfg, 13);
        let gamma_bd = r.gamma_hat(&[1, 3]);
        assert!((gamma_bd - 0.7).abs() < 0.03, "gamma {gamma_bd}");
    }

    #[test]
    fn certain_k4_nucleus() {
        // A certain K4 with a flaky pendant: the K4 is the max-sized densest
        // subgraph of every world, so gamma(K4) = 1 and it is the top NDS.
        let g = UncertainGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (3, 4, 0.3),
            ],
        );
        let cfg = NdsConfig::new(DensityNotion::Edge, 300, 3, 2);
        let r = run(&g, &cfg, 21);
        assert_eq!(r.top_k[0].0, vec![0, 1, 2, 3]);
        assert!((r.top_k[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(r.empty_worlds, 0);
    }

    #[test]
    fn min_size_is_respected() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.9), (2, 3, 0.9)]);
        let cfg = NdsConfig::new(DensityNotion::Edge, 500, 10, 3);
        let r = run(&g, &cfg, 2);
        for (set, _) in &r.top_k {
            assert!(set.len() >= 3);
        }
    }

    #[test]
    fn returned_sets_are_closed() {
        let g = UncertainGraph::from_weighted_edges(
            5,
            &[(0, 1, 0.8), (0, 2, 0.8), (1, 2, 0.8), (3, 4, 0.4)],
        );
        let cfg = NdsConfig::new(DensityNotion::Edge, 800, 10, 1);
        let r = run(&g, &cfg, 3);
        // Closedness w.r.t. gamma_hat: no strict superset among candidates
        // has the same support.
        for (set, gamma) in &r.top_k {
            for (other, gamma2) in &r.top_k {
                if other.len() > set.len() && ugraph::nodeset::is_subset(set, other) {
                    assert!(
                        gamma2 < gamma,
                        "{set:?} (γ={gamma}) not closed vs {other:?} (γ={gamma2})"
                    );
                }
            }
        }
    }

    #[test]
    fn heuristic_mode_runs() {
        let g = UncertainGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 0.9),
                (0, 2, 0.9),
                (1, 2, 0.9),
                (2, 3, 0.2),
                (3, 4, 0.2),
            ],
        );
        let mut cfg = NdsConfig::new(DensityNotion::Edge, 400, 4, 2);
        cfg.heuristic = true;
        let r = run(&g, &cfg, 17);
        assert!(!r.top_k.is_empty());
        // The strong triangle is a frequent nucleus. In heuristic mode the
        // per-world transaction keeps nodes {0, 1, 2} even when one triangle
        // edge is absent (the remaining path is still in the heuristic's
        // max-sized dense subgraph), so its support is close to 1 — but each
        // pair is contained in at least as many transactions, so the three
        // pairs can outrank it. k = 4 covers both layouts: either all three
        // pairs are closed and the triangle is fourth, or a pair collapses
        // into the triangle and it ranks higher.
        let gamma_tri = r.gamma_hat(&[0, 1, 2]);
        assert!(gamma_tri > 0.9, "gamma {gamma_tri}");
        assert!(r.top_k.iter().any(|(s, _)| s == &vec![0, 1, 2]));
    }

    #[test]
    fn gamma_hat_of_unseen_set_is_zero() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 1.0)]);
        let cfg = NdsConfig::new(DensityNotion::Edge, 50, 1, 1);
        let r = run(&g, &cfg, 4);
        assert_eq!(r.gamma_hat(&[2, 3]), 0.0);
        assert_eq!(r.gamma_hat(&[0, 1]), 1.0);
    }

    #[test]
    fn controlled_run_matches_and_interrupts() {
        use crate::api::ApiError;
        use crate::control::{InterruptReason, RunControl};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sampling::MonteCarlo;
        use std::time::{Duration, Instant};
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
        let cfg = NdsConfig::new(DensityNotion::Edge, 200, 3, 2);
        let plain = run(&g, &cfg, 8);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(8));
        let ctrl = query_for(&cfg)
            .control(RunControl::unbounded())
            .run_with_sampler(&g, &mut mc)
            .unwrap();
        assert_eq!(plain.top_k, ctrl.top_k);

        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(8));
        let expired =
            RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        let err = query_for(&cfg)
            .control(expired)
            .run_with_sampler(&g, &mut mc)
            .unwrap_err();
        match err {
            ApiError::Interrupted(i) => {
                assert_eq!(i.reason, InterruptReason::DeadlineExceeded);
                assert_eq!(i.completed_worlds, 0);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }
}
