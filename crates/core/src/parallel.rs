//! Parallel Monte-Carlo MPDS estimation (ablation; DESIGN.md §6).
//!
//! The paper's experiments are single-core, but Algorithm 1's θ iterations
//! are embarrassingly parallel: each worker samples its own share of worlds
//! with an independently seeded Monte-Carlo stream and accumulates a local
//! candidate table; tables are merged at the end. The estimator stays
//! unbiased (the union of independent MC streams is an MC stream), and the
//! result is deterministic for a fixed `(seed, workers)` pair.
//!
//! Worker streams are derived with [`sampling::stream_seed`], *not* by
//! seeding worker `w` with `seed + w`: the additive scheme silently shares
//! all but one stream between runs rooted at adjacent seeds, correlating
//! experiments that are supposed to be independent replicates.
//!
//! This module is now a thin compatibility shim: the actual fan-out lives in
//! [`crate::api`] behind `Query::..().exec(Exec::Threads(n))`, which extends
//! it to NDS, the heuristic mode, and every sampler kind.

use crate::api::{Exec, Query, RunDetails};
use crate::estimate::{MpdsConfig, MpdsResult};
use ugraph::UncertainGraph;

/// Runs Algorithm 1 with `workers` scoped threads, splitting θ evenly.
/// Worker `w` uses Monte-Carlo sub-stream `w` of the root `seed`
/// ([`sampling::stream_seed`]).
#[deprecated(
    since = "0.1.0",
    note = "use `mpds::api::Query::mpds(..).exec(Exec::Threads(n)).run(..)`"
)]
pub fn parallel_top_k_mpds(
    g: &UncertainGraph,
    cfg: &MpdsConfig,
    seed: u64,
    workers: usize,
) -> MpdsResult {
    assert!(workers >= 1 && cfg.theta >= workers);
    assert!(
        cfg.all_densest && !cfg.heuristic,
        "parallel ablation covers the default configuration only"
    );
    let run = Query::from_mpds_config(cfg)
        .seed(seed)
        .exec(Exec::Threads(workers))
        .run(g)
        .expect("asserted preconditions satisfy the builder's validation");
    match run.details {
        RunDetails::Mpds(result) => result,
        RunDetails::Nds(_) => unreachable!("Query::mpds produces MPDS details"),
    }
}

#[cfg(test)]
mod tests {
    // These tests pin the behavior of the deprecated wrapper (the
    // equivalence contract the builder API is held to).
    #![allow(deprecated)]

    use super::*;
    use crate::estimate::top_k_mpds;
    use densest::DensityNotion;
    use sampling::MonteCarlo;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn parallel_matches_sequential_with_one_worker() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 500, 3);
        let par = parallel_top_k_mpds(&g, &cfg, 42, 1);
        // The single worker consumes sub-stream 0 of root 42.
        let mut mc = MonteCarlo::with_stream(&g, 42, 0);
        let seq = top_k_mpds(&g, &mut mc, &cfg);
        assert_eq!(par.top_k, seq.top_k);
        assert_eq!(par.empty_worlds, seq.empty_worlds);
    }

    /// Regression: with the old `seed + w` worker seeding, a 2-worker run
    /// rooted at seed 1 shared worker 1's entire world stream with a run
    /// rooted at seed 2 (its worker 0). The decorrelated sub-streams must
    /// make adjacent-seed runs draw genuinely different world multisets.
    #[test]
    fn adjacent_root_seeds_draw_different_worlds() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 64, 3);
        let a = parallel_top_k_mpds(&g, &cfg, 1, 2);
        let b = parallel_top_k_mpds(&g, &cfg, 2, 2);
        // Identical per-world densest counts in order would mean shared
        // streams; the halves must not line up under any worker alignment.
        assert_ne!(a.densest_counts[..32], b.densest_counts[..32]);
        assert_ne!(a.densest_counts[32..], b.densest_counts[..32]);
    }

    #[test]
    fn parallel_is_deterministic_per_seed_and_workers() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 400, 3);
        let a = parallel_top_k_mpds(&g, &cfg, 7, 4);
        let b = parallel_top_k_mpds(&g, &cfg, 7, 4);
        assert_eq!(a.top_k, b.top_k);
    }

    #[test]
    fn parallel_converges_to_exact() {
        let g = fig1();
        let cfg = MpdsConfig::new(DensityNotion::Edge, 8000, 1);
        let r = parallel_top_k_mpds(&g, &cfg, 3, 4);
        assert_eq!(r.top_k[0].0, vec![1, 3]);
        assert!((r.top_k[0].1 - 0.42).abs() < 0.03);
        assert_eq!(r.densest_counts.len(), 8000);
    }

    #[test]
    #[should_panic(expected = "parallel ablation covers the default")]
    fn rejects_one_mode() {
        let g = fig1();
        let mut cfg = MpdsConfig::new(DensityNotion::Edge, 100, 1);
        cfg.all_densest = false;
        parallel_top_k_mpds(&g, &cfg, 1, 2);
    }
}
