//! Probabilistic `(k, γ)`-truss decomposition (Huang, Lu, Lakshmanan \[41\]).
//!
//! The γ-support of an edge `e = (u, v)` is the largest `s` such that
//! `Pr[e exists ∧ sup(e) ≥ s] ≥ γ`, where `sup(e)` counts triangles through
//! `e` — Poisson-binomial over the common neighbors `w` with success
//! probability `p(u,w)·p(v,w)`. The `(k, γ)`-truss keeps edges whose
//! γ-support is at least `k − 2` within the truss; peeling by minimum
//! γ-support yields truss numbers, and the innermost truss (maximum `k`) is
//! the baseline of the paper's Tables III–VI.

use ugraph::{NodeId, NodeSet, UncertainGraph};

/// Result of the decomposition.
#[derive(Debug, Clone)]
pub struct GammaTruss {
    /// Truss number of every edge (indexed like the canonical edge list);
    /// `k ≥ 2`, where a `k`-truss edge closes `k − 2` probable triangles.
    pub truss_number: Vec<u32>,
    /// Node set of the innermost truss (edges with maximum truss number).
    pub innermost: NodeSet,
    /// The maximum truss number.
    pub k_max: u32,
}

fn pmf_of(probs: &[f64]) -> Vec<f64> {
    let mut pmf = vec![1.0f64];
    for &p in probs {
        let mut out = vec![0.0; pmf.len() + 1];
        for (j, &q) in pmf.iter().enumerate() {
            out[j] += q * (1.0 - p);
            out[j + 1] += q * p;
        }
        pmf = out;
    }
    pmf
}

/// γ-support: max `s ≥ 0` with `p_e · Pr[X ≥ s] ≥ γ`; `u32::MAX` sentinel is
/// never returned (support is bounded by the pmf length).
fn gamma_support(p_e: f64, pmf: &[f64], gamma: f64) -> u32 {
    if p_e < gamma {
        return 0;
    }
    let mut tail = 0.0;
    for s in (1..pmf.len()).rev() {
        tail += pmf[s];
        if p_e * tail >= gamma {
            return s as u32;
        }
    }
    0
}

/// Full `(k, γ)`-truss decomposition by minimum-γ-support edge peeling.
pub fn gamma_truss_decomposition(g: &UncertainGraph, gamma: f64) -> GammaTruss {
    assert!(gamma > 0.0 && gamma <= 1.0);
    let gr = g.graph();
    let m = gr.num_edges();
    // Triangle partner lists per edge: (w, other_edge_1, other_edge_2).
    let mut partners: Vec<Vec<(NodeId, u32, u32)>> = vec![Vec::new(); m];
    for (u, v, w) in gr.triangles() {
        let euv = gr.edge_index(u, v).unwrap() as u32;
        let euw = gr.edge_index(u, w).unwrap() as u32;
        let evw = gr.edge_index(v, w).unwrap() as u32;
        partners[euv as usize].push((w, euw, evw));
        partners[euw as usize].push((v, euv, evw));
        partners[evw as usize].push((u, euv, euw));
    }
    // Live triangle probabilities per edge (parallel to a live partner list).
    let mut live_partners: Vec<Vec<(u32, u32)>> = Vec::with_capacity(m); // (e1, e2)
    let mut live_probs: Vec<Vec<f64>> = Vec::with_capacity(m);
    for (e, ps) in partners.iter().enumerate() {
        let mut lp = Vec::with_capacity(ps.len());
        let mut pr = Vec::with_capacity(ps.len());
        for &(_, e1, e2) in ps {
            lp.push((e1, e2));
            pr.push(g.prob(e1 as usize) * g.prob(e2 as usize));
        }
        live_partners.push(lp);
        live_probs.push(pr);
        let _ = e;
    }
    let mut support: Vec<u32> = (0..m)
        .map(|e| gamma_support(g.prob(e), &pmf_of(&live_probs[e]), gamma))
        .collect();

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> =
        (0..m).map(|e| Reverse((support[e], e as u32))).collect();
    let mut alive = vec![true; m];
    let mut truss_number = vec![2u32; m];
    let mut running_max = 0u32;

    for _ in 0..m {
        let e = loop {
            let Reverse((s, e)) = heap.pop().expect("live edges remain");
            if alive[e as usize] && support[e as usize] == s {
                break e as usize;
            }
        };
        alive[e] = false;
        running_max = running_max.max(support[e]);
        truss_number[e] = running_max + 2;
        // Kill the triangles through e: each live partner pair (e1, e2)
        // loses one triangle on both e1 and e2.
        let pairs = std::mem::take(&mut live_partners[e]);
        for (e1, e2) in pairs {
            for (me, other) in [(e1 as usize, e2 as usize), (e2 as usize, e1 as usize)] {
                if !alive[me] {
                    continue;
                }
                // Remove the (e, other)-triangle from `me`'s live lists.
                let pos = live_partners[me].iter().position(|&(a, b)| {
                    (a as usize == e && b as usize == other)
                        || (b as usize == e && a as usize == other)
                });
                let Some(pos) = pos else { continue };
                live_partners[me].swap_remove(pos);
                live_probs[me].swap_remove(pos);
                let ns = gamma_support(g.prob(me), &pmf_of(&live_probs[me]), gamma);
                if ns != support[me] {
                    support[me] = ns;
                    heap.push(Reverse((ns, me as u32)));
                }
            }
        }
    }

    let k_max = truss_number.iter().copied().max().unwrap_or(2);
    let mut innermost: Vec<NodeId> = gr
        .edges()
        .iter()
        .enumerate()
        .filter(|&(e, _)| truss_number[e] == k_max)
        .flat_map(|(_, &(u, v))| [u, v])
        .collect();
    innermost.sort_unstable();
    innermost.dedup();
    GammaTruss {
        truss_number,
        innermost,
        k_max,
    }
}

/// Node set of the innermost γ-truss (paper §VI-B).
pub fn innermost_gamma_truss(g: &UncertainGraph, gamma: f64) -> NodeSet {
    gamma_truss_decomposition(g, gamma).innermost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_support_basics() {
        // Edge p=.9 with two triangles of prob .5 each.
        let pmf = pmf_of(&[0.5, 0.5]);
        // p_e * P[X>=1] = .9*.75 = .675; p_e * P[X>=2] = .9*.25 = .225.
        assert_eq!(gamma_support(0.9, &pmf, 0.6), 1);
        assert_eq!(gamma_support(0.9, &pmf, 0.2), 2);
        assert_eq!(gamma_support(0.9, &pmf, 0.7), 0);
        // Edge probability below gamma: support 0 regardless.
        assert_eq!(gamma_support(0.05, &pmf, 0.1), 0);
    }

    #[test]
    fn certain_graph_matches_deterministic_truss() {
        // Certain K4 + pendant: K4 edges form a 4-truss (2 triangles each),
        // the pendant edge a 2-truss.
        let g = UncertainGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
            ],
        );
        let t = gamma_truss_decomposition(&g, 0.5);
        assert_eq!(t.k_max, 4);
        assert_eq!(t.innermost, vec![0, 1, 2, 3]);
        let pendant = g.graph().edge_index(3, 4).unwrap();
        assert_eq!(t.truss_number[pendant], 2);
    }

    #[test]
    fn weak_triangles_do_not_count() {
        // Triangle with tiny probabilities: no edge reaches support 1 at
        // gamma = 0.5, so everything stays a 2-truss.
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.3), (0, 2, 0.3), (1, 2, 0.3)]);
        let t = gamma_truss_decomposition(&g, 0.5);
        assert_eq!(t.k_max, 2);
    }

    #[test]
    fn strong_triangle_survives() {
        let g = UncertainGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 0.95),
                (0, 2, 0.95),
                (1, 2, 0.95),
                (2, 3, 0.2),
                (3, 4, 0.2),
            ],
        );
        let t = gamma_truss_decomposition(&g, 0.5);
        assert_eq!(t.k_max, 3);
        assert_eq!(t.innermost, vec![0, 1, 2]);
    }

    #[test]
    fn truss_numbers_monotone_under_gamma() {
        // Stricter gamma can only lower truss numbers.
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[
                (0, 1, 0.8),
                (0, 2, 0.8),
                (0, 3, 0.8),
                (1, 2, 0.8),
                (1, 3, 0.8),
                (2, 3, 0.8),
            ],
        );
        let loose = gamma_truss_decomposition(&g, 0.1);
        let strict = gamma_truss_decomposition(&g, 0.9);
        for e in 0..g.num_edges() {
            assert!(strict.truss_number[e] <= loose.truss_number[e]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::from_weighted_edges(3, &[]);
        let t = gamma_truss_decomposition(&g, 0.5);
        assert_eq!(t.k_max, 2);
        assert!(t.innermost.is_empty());
        assert!(t.truss_number.is_empty());
    }
}
