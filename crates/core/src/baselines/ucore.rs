//! Probabilistic `(k, η)`-core decomposition (Bonchi et al. \[40\]).
//!
//! The η-degree of a node `v` is the largest `k` such that
//! `Pr[deg(v) ≥ k] ≥ η`, where `deg(v)` is Poisson-binomial over `v`'s
//! incident edge probabilities. The `(k, η)`-core is the largest subgraph in
//! which every node has η-degree ≥ `k` *within the subgraph*; peeling by
//! minimum η-degree yields every node's η-core number, exactly as in the
//! deterministic case. The innermost core (maximum `k`) is the baseline the
//! paper compares against in Tables III–VI.
//!
//! Per-node degree distributions are maintained incrementally: removing an
//! incident edge divides its Bernoulli factor out of the pmf in O(d); edges
//! with probability close to 1 fall back to a from-scratch rebuild for
//! numerical stability.

use ugraph::{NodeId, NodeSet, UncertainGraph};

/// Result of the decomposition.
#[derive(Debug, Clone)]
pub struct EtaCores {
    /// η-core number of every node.
    pub core_number: Vec<u32>,
    /// The innermost (maximum-k) η-core, as a sorted node set.
    pub innermost: NodeSet,
    /// The maximum core number.
    pub k_max: u32,
}

/// Poisson-binomial pmf over a set of Bernoulli probabilities.
fn pmf_of(probs: &[f64]) -> Vec<f64> {
    let mut pmf = vec![1.0f64];
    for &p in probs {
        pmf = convolve_bernoulli(&pmf, p);
    }
    pmf
}

fn convolve_bernoulli(pmf: &[f64], p: f64) -> Vec<f64> {
    let mut out = vec![0.0; pmf.len() + 1];
    for (j, &q) in pmf.iter().enumerate() {
        out[j] += q * (1.0 - p);
        out[j + 1] += q * p;
    }
    out
}

/// Divides the Bernoulli factor `p` out of `pmf` (inverse of
/// [`convolve_bernoulli`]); numerically stable for `p ≤ 0.95`.
fn deconvolve_bernoulli(pmf: &[f64], p: f64) -> Vec<f64> {
    debug_assert!(pmf.len() >= 2);
    let mut out = vec![0.0; pmf.len() - 1];
    let q = 1.0 - p;
    out[0] = pmf[0] / q;
    for j in 1..out.len() {
        out[j] = (pmf[j] - p * out[j - 1]) / q;
        out[j] = out[j].max(0.0); // clamp tiny negative drift
    }
    out
}

/// η-degree from a pmf: max k with `Pr[X ≥ k] ≥ η` (0 if even k=1 fails).
fn eta_degree(pmf: &[f64], eta: f64) -> u32 {
    // Suffix sums from the top.
    let mut tail = 0.0;
    let mut best = 0u32;
    for k in (1..pmf.len()).rev() {
        tail += pmf[k];
        if tail >= eta {
            best = k as u32;
            break;
        }
    }
    best
}

/// Full η-core decomposition by minimum-η-degree peeling.
pub fn eta_core_decomposition(g: &UncertainGraph, eta: f64) -> EtaCores {
    assert!(eta > 0.0 && eta <= 1.0);
    let n = g.num_nodes();
    let gr = g.graph();
    // Live incident probabilities per node (parallel to neighbor lists).
    let mut inc_probs: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut inc_nbrs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, &(u, v)) in gr.edges().iter().enumerate() {
        let p = g.prob(i);
        inc_probs[u as usize].push(p);
        inc_nbrs[u as usize].push(v);
        inc_probs[v as usize].push(p);
        inc_nbrs[v as usize].push(u);
    }
    let mut pmf: Vec<Vec<f64>> = inc_probs.iter().map(|ps| pmf_of(ps)).collect();
    let mut eta_deg: Vec<u32> = pmf.iter().map(|q| eta_degree(q, eta)).collect();

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> =
        (0..n).map(|v| Reverse((eta_deg[v], v as NodeId))).collect();
    let mut alive = vec![true; n];
    let mut core_number = vec![0u32; n];
    let mut running_max = 0u32;

    for _ in 0..n {
        let v = loop {
            let Reverse((d, v)) = heap.pop().expect("live nodes remain");
            if alive[v as usize] && eta_deg[v as usize] == d {
                break v;
            }
        };
        alive[v as usize] = false;
        running_max = running_max.max(eta_deg[v as usize]);
        core_number[v as usize] = running_max;
        // Remove v's edges from each live neighbor.
        let nbrs = std::mem::take(&mut inc_nbrs[v as usize]);
        let probs = std::mem::take(&mut inc_probs[v as usize]);
        for (&u, &p) in nbrs.iter().zip(&probs) {
            let u = u as usize;
            if !alive[u] {
                continue;
            }
            // Locate and remove the (v, p) entry at u.
            let pos = inc_nbrs[u]
                .iter()
                .position(|&w| w == v)
                .expect("edge symmetric");
            inc_nbrs[u].swap_remove(pos);
            inc_probs[u].swap_remove(pos);
            pmf[u] = if p <= 0.95 {
                deconvolve_bernoulli(&pmf[u], p)
            } else {
                pmf_of(&inc_probs[u])
            };
            let nd = eta_degree(&pmf[u], eta);
            if nd != eta_deg[u] {
                eta_deg[u] = nd;
                heap.push(Reverse((nd, u as NodeId)));
            }
        }
    }

    let k_max = core_number.iter().copied().max().unwrap_or(0);
    let innermost: NodeSet = (0..n as NodeId)
        .filter(|&v| core_number[v as usize] == k_max)
        .collect();
    EtaCores {
        core_number,
        innermost,
        k_max,
    }
}

/// The innermost η-core node set (paper §VI-B: "the (k, η)-core with the
/// largest value of k").
pub fn innermost_eta_core(g: &UncertainGraph, eta: f64) -> NodeSet {
    eta_core_decomposition(g, eta).innermost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_and_eta_degree_basics() {
        // Two edges with p = 0.5: P[X>=1] = .75, P[X>=2] = .25.
        let pmf = pmf_of(&[0.5, 0.5]);
        assert!((pmf[0] - 0.25).abs() < 1e-12);
        assert!((pmf[1] - 0.5).abs() < 1e-12);
        assert!((pmf[2] - 0.25).abs() < 1e-12);
        assert_eq!(eta_degree(&pmf, 0.7), 1);
        assert_eq!(eta_degree(&pmf, 0.25), 2);
        assert_eq!(eta_degree(&pmf, 0.8), 0);
    }

    #[test]
    fn deconvolve_inverts_convolve() {
        let base = pmf_of(&[0.3, 0.6, 0.8]);
        let with = convolve_bernoulli(&base, 0.4);
        let back = deconvolve_bernoulli(&with, 0.4);
        for (a, b) in base.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn certain_graph_matches_deterministic_core() {
        // All probabilities 1: η-core = classic k-core for any η.
        let edges: Vec<(NodeId, NodeId, f64)> = vec![
            (0, 1, 1.0),
            (0, 2, 1.0),
            (0, 3, 1.0),
            (1, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
        ];
        let g = UncertainGraph::from_weighted_edges(6, &edges);
        let cores = eta_core_decomposition(&g, 0.5);
        assert_eq!(cores.core_number[..4], [3, 3, 3, 3]);
        assert_eq!(cores.core_number[4], 1);
        assert_eq!(cores.core_number[5], 1);
        assert_eq!(cores.innermost, vec![0, 1, 2, 3]);
        assert_eq!(cores.k_max, 3);
    }

    #[test]
    fn low_probability_edges_reduce_eta_degree() {
        // Star with 3 weak edges (p=.2): P[deg >= 1] = 1-.8^3 = .488 < .5.
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.2), (0, 2, 0.2), (0, 3, 0.2)]);
        let cores = eta_core_decomposition(&g, 0.5);
        assert_eq!(cores.k_max, 0);
        // With a lenient eta = 0.15, even the leaves (P[deg >= 1] = 0.2) keep
        // eta-degree 1, so the whole star is a (1, 0.15)-core.
        let cores = eta_core_decomposition(&g, 0.15);
        assert_eq!(cores.k_max, 1);
    }

    #[test]
    fn innermost_core_finds_strong_cluster() {
        // Strong triangle + weak periphery.
        let g = UncertainGraph::from_weighted_edges(
            6,
            &[
                (0, 1, 0.95),
                (0, 2, 0.95),
                (1, 2, 0.95),
                (2, 3, 0.1),
                (3, 4, 0.1),
                (4, 5, 0.1),
            ],
        );
        let inner = innermost_eta_core(&g, 0.5);
        assert_eq!(inner, vec![0, 1, 2]);
    }

    #[test]
    fn eta_one_requires_certain_edges() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.99)]);
        let cores = eta_core_decomposition(&g, 1.0);
        // Only the certain edge counts at eta = 1.
        assert_eq!(cores.core_number[0], 1);
        assert_eq!(cores.core_number[1], 1);
        assert_eq!(cores.core_number[2], 0);
    }

    #[test]
    fn peeling_matches_naive_recompute() {
        // Cross-check against a naive algorithm that recomputes every pmf
        // from scratch at each step.
        let mut seed = 0x00ab_c123_u64;
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                if seed % 100 < 40 {
                    let p = 0.05 + (seed % 90) as f64 / 100.0;
                    edges.push((u, v, p));
                }
            }
        }
        let g = UncertainGraph::from_weighted_edges(9, &edges);
        let fast = eta_core_decomposition(&g, 0.4);
        let slow = naive_eta_cores(&g, 0.4);
        assert_eq!(fast.core_number, slow);
    }

    fn naive_eta_cores(g: &UncertainGraph, eta: f64) -> Vec<u32> {
        let n = g.num_nodes();
        let mut alive = vec![true; n];
        let mut core = vec![0u32; n];
        let mut running = 0u32;
        for _ in 0..n {
            // Recompute every live node's eta-degree from scratch.
            let mut best: Option<(u32, usize)> = None;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                let probs: Vec<f64> = g
                    .graph()
                    .neighbors(v as NodeId)
                    .iter()
                    .filter(|&&w| alive[w as usize])
                    .map(|&w| g.edge_prob(v as NodeId, w).unwrap())
                    .collect();
                let d = eta_degree(&pmf_of(&probs), eta);
                if best.is_none() || (d, v) < best.unwrap() {
                    best = Some((d, v));
                }
            }
            let (d, v) = best.unwrap();
            running = running.max(d);
            core[v] = running;
            alive[v] = false;
        }
        core
    }
}
