//! Expected densest subgraph (EDS) — Zou \[44\], extended to clique and
//! pattern densities per the paper's Appendix C.
//!
//! By linearity of expectation, the expected edge density of `U` equals
//! `Σ_{e ⊆ U} p(e) / |U|`, i.e. the *weighted* edge density with weights
//! `p(e)`; likewise the expected pattern density is the weighted pattern
//! density with instance weights `Π_{e ∈ ω} p(e)` (paper Theorem 7). The
//! maximizer is found exactly (up to the fixed-point quantization of the
//! weights) with the same parameterized min-cut machinery as the
//! deterministic solvers: probabilities are mapped to parts-per-million
//! integers so the Dinkelbach iteration runs on exact integer capacities.

use densest::{Density, DensityNotion};
use maxflow::FlowNetwork;
use ugraph::{NodeId, NodeSet, UncertainGraph};

/// Fixed-point scale for probabilities / instance weights.
const SCALE: f64 = 1_000_000.0;

/// An expected-densest-subgraph solution.
#[derive(Debug, Clone)]
pub struct EdsResult {
    /// The maximizing node set (maximum-sized among the maximizers).
    pub node_set: NodeSet,
    /// Its expected density (instances per node, in expectation).
    pub expected_density: f64,
}

/// Maximum expected-density subgraph for the given notion. `None` when the
/// graph has no instances (no edges, cliques, or pattern embeddings).
pub fn expected_densest_subgraph(g: &UncertainGraph, notion: &DensityNotion) -> Option<EdsResult> {
    // Instance weights: Π of the member edge probabilities, fixed-pointed.
    // Instances whose weight rounds to zero are dropped (they contribute
    // < 1e-6 to any expected density).
    let inst = densest::solve::instances_of(g.graph(), notion);
    let arity = notion.arity() as u64;
    let gr = g.graph();
    let mut weighted: Vec<(Vec<NodeId>, u64)> = Vec::new();
    if matches!(notion, DensityNotion::Edge) {
        for (i, &(u, v)) in gr.edges().iter().enumerate() {
            let w = (g.prob(i) * SCALE).round() as u64;
            if w > 0 {
                weighted.push((vec![u, v], w));
            }
        }
    } else {
        for nodes in &inst.instances {
            // Weight = product of the probabilities of the instance's edges.
            // For non-induced instances on the same node set the edge sets
            // differ, but density only depends on node sets; summing the
            // per-embedding products is exactly the expected instance count
            // (paper Theorem 7). We recover each instance's edges by taking
            // all present edges among its nodes — correct for cliques, and
            // for patterns we sum embedding weights via the matcher below.
            let w = instance_weight(g, nodes, notion);
            if w > 0 {
                weighted.push((nodes.clone(), w));
            }
        }
    }
    if weighted.is_empty() {
        return None;
    }
    let n = gr.num_nodes();
    // Group by node set (weighted Algorithm 7 network).
    let mut groups: std::collections::HashMap<Vec<NodeId>, u64> = std::collections::HashMap::new();
    for (nodes, w) in weighted {
        *groups.entry(nodes).or_insert(0) += w;
    }
    let total_w: u64 = groups.values().sum();
    let group_list: Vec<(Vec<NodeId>, u64)> = groups.into_iter().collect();

    // Dinkelbach on the weighted density (num = fixed-point weight).
    let mut alpha = whole_density(&group_list, n);
    loop {
        let (mut net, s, t) = build_weighted_network(n, &group_list, arity, alpha);
        let flow = net.max_flow(s, t);
        let trivial = arity * total_w * alpha.den;
        debug_assert!(flow <= trivial);
        if flow == trivial {
            let reach_t = net.can_reach(t);
            let node_set: NodeSet = (0..n as NodeId)
                .filter(|&v| !reach_t[v as usize] && participates(&group_list, v))
                .collect();
            let set = if node_set.is_empty() {
                // Degenerate guard; fall back to the whole support.
                support_nodes(&group_list)
            } else {
                node_set
            };
            let expected_density =
                weight_within(&group_list, n, &set) as f64 / (SCALE * set.len() as f64);
            return Some(EdsResult {
                node_set: set,
                expected_density,
            });
        }
        let reach = net.reachable_from(s);
        let witness: Vec<NodeId> = (0..n as NodeId).filter(|&v| reach[v as usize]).collect();
        debug_assert!(!witness.is_empty());
        let w = weight_within(&group_list, n, &witness);
        let d = Density::new(w, witness.len() as u64);
        debug_assert!(d > alpha);
        alpha = d;
    }
}

/// Sum of embedding weights of all instances on `nodes` — for cliques this
/// is the product over the clique's edges; for general patterns we re-run
/// the matcher restricted to the node set and sum per-embedding products.
fn instance_weight(g: &UncertainGraph, nodes: &[NodeId], notion: &DensityNotion) -> u64 {
    let gr = g.graph();
    match notion {
        DensityNotion::Edge => unreachable!("handled by caller"),
        DensityNotion::Clique(_) => {
            let mut p = 1.0f64;
            for (i, &u) in nodes.iter().enumerate() {
                for &v in &nodes[i + 1..] {
                    p *= g
                        .edge_prob(u, v)
                        .expect("clique instances have all pair edges");
                }
            }
            (p * SCALE).round() as u64
        }
        DensityNotion::Pattern(pat) => {
            // The instance `nodes` entry corresponds to ONE embedding's edge
            // image; recover its probability by multiplying the pattern-edge
            // images. `instances_of` already deduplicated by edge image, so
            // re-match the pattern on the induced subgraph and pick weights
            // per distinct edge image. To stay simple and exact we enumerate
            // the pattern on the induced subgraph and divide the total weight
            // evenly across the duplicate node-set entries.
            let (sub, map) = gr.induced_subgraph(nodes);
            let inst = densest::instances::enumerate_pattern(&sub, pat);
            // Total weight of edge-image-distinct instances covering ALL of
            // `nodes` (skip ones on proper subsets; they appear as their own
            // instance entries).
            let full: Vec<&Vec<NodeId>> = inst
                .instances
                .iter()
                .filter(|i| i.len() == nodes.len())
                .collect();
            if full.is_empty() {
                return 0;
            }
            // enumerate_pattern lost the edge images; recompute weights by
            // re-running a tiny matcher that keeps them.
            let images = pattern_edge_images(&sub, pat);
            let mut total = 0.0f64;
            for image in images {
                // Instance must span every node of `nodes`.
                let mut covered: Vec<u32> = image.iter().flat_map(|&(a, b)| [a, b]).collect();
                covered.sort_unstable();
                covered.dedup();
                if covered.len() != nodes.len() {
                    continue;
                }
                let mut p = 1.0f64;
                for &(a, b) in &image {
                    p *= g
                        .edge_prob(map[a as usize], map[b as usize])
                        .expect("edge exists in world");
                }
                total += p;
            }
            let entries = full.len() as f64;
            ((total / entries) * SCALE).round() as u64
        }
    }
}

/// All distinct pattern edge-images in `g` (local helper for EDS weights).
fn pattern_edge_images(g: &ugraph::Graph, pat: &ugraph::Pattern) -> Vec<Vec<(u32, u32)>> {
    use std::collections::HashSet;
    let k = pat.num_nodes();
    let n = g.num_nodes();
    let mut images: HashSet<Vec<(u32, u32)>> = HashSet::new();
    let mut map: Vec<u32> = Vec::with_capacity(k);
    fn rec(
        g: &ugraph::Graph,
        pat: &ugraph::Pattern,
        map: &mut Vec<u32>,
        n: usize,
        images: &mut std::collections::HashSet<Vec<(u32, u32)>>,
    ) {
        let pos = map.len();
        if pos == pat.num_nodes() {
            let mut image: Vec<(u32, u32)> = pat
                .edges()
                .iter()
                .map(|&(a, b)| {
                    let (x, y) = (map[a as usize], map[b as usize]);
                    if x < y {
                        (x, y)
                    } else {
                        (y, x)
                    }
                })
                .collect();
            image.sort_unstable();
            images.insert(image);
            return;
        }
        for v in 0..n as u32 {
            if map.contains(&v) {
                continue;
            }
            // Check pattern edges to already-placed nodes.
            let ok = (0..pos).all(|j| !pat.has_edge(pos, j) || g.has_edge(v, map[j]));
            if ok {
                map.push(v);
                rec(g, pat, map, n, images);
                map.pop();
            }
        }
    }
    rec(g, pat, &mut map, n, &mut images);
    images.into_iter().collect()
}

fn whole_density(groups: &[(Vec<NodeId>, u64)], n: usize) -> Density {
    let support = support_nodes(groups);
    let w = weight_within(groups, n, &support);
    Density::new(w, support.len().max(1) as u64)
}

fn support_nodes(groups: &[(Vec<NodeId>, u64)]) -> NodeSet {
    let mut s: Vec<NodeId> = groups.iter().flat_map(|(g, _)| g.iter().copied()).collect();
    s.sort_unstable();
    s.dedup();
    s
}

fn participates(groups: &[(Vec<NodeId>, u64)], v: NodeId) -> bool {
    groups.iter().any(|(g, _)| g.contains(&v))
}

fn weight_within(groups: &[(Vec<NodeId>, u64)], n: usize, nodes: &[NodeId]) -> u64 {
    let mut mark = vec![false; n];
    for &v in nodes {
        mark[v as usize] = true;
    }
    groups
        .iter()
        .filter(|(g, _)| g.iter().all(|&v| mark[v as usize]))
        .map(|&(_, w)| w)
        .sum()
}

/// Weighted grouped flow network (Algorithm 7 with weights), scaled by the
/// density denominator.
fn build_weighted_network(
    n: usize,
    groups: &[(Vec<NodeId>, u64)],
    arity: u64,
    alpha: Density,
) -> (FlowNetwork, usize, usize) {
    let (a, b) = (alpha.num, alpha.den);
    let s = n + groups.len();
    let t = s + 1;
    let mut net = FlowNetwork::new(n + groups.len() + 2);
    let mut wdeg = vec![0u64; n];
    for (nodes, w) in groups {
        for &v in nodes {
            wdeg[v as usize] += w;
        }
    }
    for v in 0..n {
        if wdeg[v] == 0 {
            continue; // isolated w.r.t. instances: never part of a maximizer
        }
        net.add_edge(s, v, b * wdeg[v], 0);
        net.add_edge(v, t, arity * a, 0);
    }
    for (gi, (nodes, w)) in groups.iter().enumerate() {
        for &v in nodes {
            net.add_edge(n + gi, v as usize, b * w * (arity - 1), 0);
            net.add_edge(v as usize, n + gi, b * w, 0);
        }
    }
    (net, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::Pattern;

    /// Brute-force expected densest subgraph over all subsets.
    fn brute_force(g: &UncertainGraph, notion: &DensityNotion) -> Option<f64> {
        let n = g.num_nodes();
        assert!(n <= 12);
        let inst = densest::solve::instances_of(g.graph(), notion);
        if inst.count() == 0 {
            return None;
        }
        let mut best = 0.0f64;
        for mask in 1u32..(1 << n) {
            let nodes: Vec<NodeId> = (0..n as NodeId).filter(|&v| mask >> v & 1 == 1).collect();
            let d = expected_density_of(g, notion, &nodes);
            if d > best {
                best = d;
            }
        }
        Some(best)
    }

    /// Direct expected density of a node set (for validation).
    fn expected_density_of(g: &UncertainGraph, notion: &DensityNotion, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        match notion {
            DensityNotion::Edge => g.expected_edge_density(nodes),
            _ => {
                let (sub, map) = g.graph().induced_subgraph(nodes);
                let images = match notion {
                    DensityNotion::Clique(h) => densest::instances::enumerate_cliques(&sub, *h)
                        .instances
                        .iter()
                        .map(|c| {
                            let mut im = Vec::new();
                            for (i, &u) in c.iter().enumerate() {
                                for &v in &c[i + 1..] {
                                    im.push((u, v));
                                }
                            }
                            im
                        })
                        .collect::<Vec<_>>(),
                    DensityNotion::Pattern(p) => pattern_edge_images(&sub, p),
                    DensityNotion::Edge => unreachable!(),
                };
                let total: f64 = images
                    .iter()
                    .map(|image| {
                        image
                            .iter()
                            .map(|&(a, b)| g.edge_prob(map[a as usize], map[b as usize]).unwrap())
                            .product::<f64>()
                    })
                    .sum();
                total / nodes.len() as f64
            }
        }
    }

    #[test]
    fn edge_eds_on_fig1() {
        // Paper Table I: {A,B,C,D} has the maximum EED 0.375.
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
        let r = expected_densest_subgraph(&g, &DensityNotion::Edge).unwrap();
        assert_eq!(r.node_set, vec![0, 1, 2, 3]);
        assert!((r.expected_density - 0.375).abs() < 1e-6);
    }

    #[test]
    fn edge_eds_none_on_edgeless() {
        let g = UncertainGraph::from_weighted_edges(3, &[]);
        assert!(expected_densest_subgraph(&g, &DensityNotion::Edge).is_none());
    }

    #[test]
    fn edge_eds_prefers_strong_cluster() {
        // A strong triangle vs a weak K4: expected density decides.
        let g = UncertainGraph::from_weighted_edges(
            7,
            &[
                (0, 1, 0.9),
                (0, 2, 0.9),
                (1, 2, 0.9),
                (3, 4, 0.2),
                (3, 5, 0.2),
                (3, 6, 0.2),
                (4, 5, 0.2),
                (4, 6, 0.2),
                (5, 6, 0.2),
            ],
        );
        let r = expected_densest_subgraph(&g, &DensityNotion::Edge).unwrap();
        // Triangle: 2.7/3 = 0.9; K4: 1.2/4 = 0.3.
        assert_eq!(r.node_set, vec![0, 1, 2]);
        assert!((r.expected_density - 0.9).abs() < 1e-6);
    }

    #[test]
    fn cross_validate_edge_eds() {
        let mut seed = 0xeeee_1111u64;
        for trial in 0..15 {
            let mut edges = Vec::new();
            for u in 0..7u32 {
                for v in (u + 1)..7 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 45 {
                        let p = 0.05 + (seed % 90) as f64 / 100.0;
                        edges.push((u, v, p));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let g = UncertainGraph::from_weighted_edges(7, &edges);
            let r = expected_densest_subgraph(&g, &DensityNotion::Edge).unwrap();
            let best = brute_force(&g, &DensityNotion::Edge).unwrap();
            assert!(
                (r.expected_density - best).abs() < 1e-4,
                "trial {trial}: {} vs {best}",
                r.expected_density
            );
        }
    }

    #[test]
    fn cross_validate_clique_eds() {
        let mut seed = 0xcccc_2222u64;
        for trial in 0..10 {
            let mut edges = Vec::new();
            for u in 0..7u32 {
                for v in (u + 1)..7 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 55 {
                        let p = 0.1 + (seed % 85) as f64 / 100.0;
                        edges.push((u, v, p));
                    }
                }
            }
            let g = UncertainGraph::from_weighted_edges(7, &edges);
            let notion = DensityNotion::Clique(3);
            match (
                expected_densest_subgraph(&g, &notion),
                brute_force(&g, &notion),
            ) {
                (None, None) => {}
                (Some(r), Some(best)) => {
                    assert!(
                        (r.expected_density - best).abs() < 1e-4,
                        "trial {trial}: {} vs {best}",
                        r.expected_density
                    );
                }
                (a, b) => panic!("trial {trial}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn cross_validate_pattern_eds() {
        let mut seed = 0xdddd_3333u64;
        for trial in 0..8 {
            let mut edges = Vec::new();
            for u in 0..6u32 {
                for v in (u + 1)..6 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 100 < 55 {
                        let p = 0.1 + (seed % 85) as f64 / 100.0;
                        edges.push((u, v, p));
                    }
                }
            }
            let g = UncertainGraph::from_weighted_edges(6, &edges);
            let notion = DensityNotion::Pattern(Pattern::two_star());
            match (
                expected_densest_subgraph(&g, &notion),
                brute_force(&g, &notion),
            ) {
                (None, None) => {}
                (Some(r), Some(best)) => {
                    assert!(
                        (r.expected_density - best).abs() < 1e-3,
                        "trial {trial}: {} vs {best}",
                        r.expected_density
                    );
                }
                (a, b) => panic!("trial {trial}: {a:?} vs {b:?}"),
            }
        }
    }
}
