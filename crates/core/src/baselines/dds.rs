//! Deterministic densest subgraph (DDS) baseline (paper §VI-C): run the
//! densest-subgraph machinery on the deterministic version of the uncertain
//! graph, ignoring all probabilities.

use densest::{max_sized_densest, DensityNotion};
use ugraph::{NodeSet, UncertainGraph};

/// The (maximum-sized) densest subgraph of the deterministic version, with
/// its deterministic density. `None` if the graph has no instances.
pub fn deterministic_densest(g: &UncertainGraph, notion: &DensityNotion) -> Option<(f64, NodeSet)> {
    max_sized_densest(g.graph(), notion).map(|(d, s)| (d.as_f64(), s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dds_ignores_probabilities() {
        // A weak K4 and a strong edge: DDS picks the K4 (density 1.5) even
        // though every K4 edge is nearly non-existent.
        let g = UncertainGraph::from_weighted_edges(
            6,
            &[
                (0, 1, 0.01),
                (0, 2, 0.01),
                (0, 3, 0.01),
                (1, 2, 0.01),
                (1, 3, 0.01),
                (2, 3, 0.01),
                (4, 5, 0.99),
            ],
        );
        let (d, set) = deterministic_densest(&g, &DensityNotion::Edge).unwrap();
        assert!((d - 1.5).abs() < 1e-12);
        assert_eq!(set, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dds_none_on_edgeless() {
        let g = UncertainGraph::from_weighted_edges(3, &[]);
        assert!(deterministic_densest(&g, &DensityNotion::Edge).is_none());
    }
}
