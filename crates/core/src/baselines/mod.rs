//! Baselines the paper compares MPDS/NDS against (§V, §VI-B, §VI-C):
//!
//! * [`eds`] — the expected densest subgraph of Zou \[44\], maximizing expected
//!   edge density, extended to expected clique/pattern density per the
//!   paper's Appendix C (Theorem 7: expected pattern density = weighted
//!   pattern density with instance weights `Π p(e)`);
//! * [`ucore`] — the probabilistic `(k, η)`-core of Bonchi et al. \[40\];
//! * [`utruss`] — the probabilistic `(k, γ)`-truss of Huang et al. \[41\];
//! * [`dds`] — the densest subgraph of the deterministic version of the
//!   uncertain graph (all probabilities ignored).

pub mod dds;
pub mod eds;
pub mod ucore;
pub mod utruss;
