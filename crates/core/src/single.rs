//! Direct estimators of `τ(U)` and `γ(U)` for a *given* node set.
//!
//! Algorithm 1 estimates τ̂ for every candidate simultaneously; when only a
//! handful of fixed sets matter (e.g. scoring the EDS / core / truss
//! baselines, Tables III–IV), it is cheaper to sample worlds and test the
//! sets directly: `U` induces a densest subgraph iff its induced density
//! equals the world's ρ\* (which skips the all-subgraph enumeration), and
//! `U` is contained in a densest subgraph iff it is contained in the
//! maximum-sized one (footnote 5).

use crate::api::{sample_worlds, NoProgress};
use crate::control::RunControl;
use densest::solve::instances_of;
use densest::{max_density, max_sized_densest, Density, DensityNotion};
use sampling::WorldSampler;
use ugraph::{nodeset, NodeId, UncertainGraph};

/// Estimated `τ̂(U)` for each of the given node sets, from θ sampled worlds.
pub fn estimate_tau_for<S: WorldSampler>(
    g: &UncertainGraph,
    sampler: &mut S,
    notion: &DensityNotion,
    sets: &[Vec<NodeId>],
    theta: usize,
) -> Vec<f64> {
    assert!(theta > 0);
    let mut hits = vec![0u32; sets.len()];
    sample_worlds(
        g,
        sampler,
        theta,
        &RunControl::unbounded(),
        &NoProgress,
        |world| {
            let Some(rho) = max_density(world, notion) else {
                return true;
            };
            let inst = instances_of(world, notion);
            for (i, set) in sets.iter().enumerate() {
                if set.is_empty() {
                    continue;
                }
                let cnt = inst.count_within(world.num_nodes(), set);
                if cnt > 0 && Density::new(cnt, set.len() as u64) == rho {
                    hits[i] += 1;
                }
            }
            true
        },
    )
    .expect("an unbounded RunControl never interrupts");
    hits.iter().map(|&h| h as f64 / theta as f64).collect()
}

/// Estimated `γ̂(U)` for each of the given node sets, from θ sampled worlds.
pub fn estimate_gamma_for<S: WorldSampler>(
    g: &UncertainGraph,
    sampler: &mut S,
    notion: &DensityNotion,
    sets: &[Vec<NodeId>],
    theta: usize,
) -> Vec<f64> {
    assert!(theta > 0);
    let sorted: Vec<Vec<NodeId>> = sets
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.sort_unstable();
            s
        })
        .collect();
    let mut hits = vec![0u32; sets.len()];
    sample_worlds(
        g,
        sampler,
        theta,
        &RunControl::unbounded(),
        &NoProgress,
        |world| {
            let Some((_, max_sized)) = max_sized_densest(world, notion) else {
                return true;
            };
            for (i, set) in sorted.iter().enumerate() {
                if !set.is_empty() && nodeset::is_subset(set, &max_sized) {
                    hits[i] += 1;
                }
            }
            true
        },
    )
    .expect("an unbounded RunControl never interrupts");
    hits.iter().map(|&h| h as f64 / theta as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sampling::MonteCarlo;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn direct_tau_matches_table1() {
        let g = fig1();
        let sets = vec![vec![1, 3], vec![0, 2], vec![0, 1, 2, 3]];
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(3));
        let taus = estimate_tau_for(&g, &mut mc, &DensityNotion::Edge, &sets, 8000);
        assert!((taus[0] - 0.42).abs() < 0.02, "{taus:?}");
        assert!((taus[1] - 0.24).abs() < 0.02, "{taus:?}");
        assert!((taus[2] - 0.28).abs() < 0.02, "{taus:?}");
    }

    #[test]
    fn direct_gamma_matches_example3() {
        let g = fig1();
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
        let gammas = estimate_gamma_for(&g, &mut mc, &DensityNotion::Edge, &[vec![1, 3]], 8000);
        assert!((gammas[0] - 0.7).abs() < 0.02, "{gammas:?}");
    }

    #[test]
    fn direct_agrees_with_algorithm1_estimates() {
        let g = fig1();
        let sets = vec![vec![0, 1], vec![0, 1, 3]];
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
        let direct = estimate_tau_for(&g, &mut mc, &DensityNotion::Edge, &sets, 6000);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
        let alg1 = match crate::api::Query::mpds(DensityNotion::Edge)
            .theta(6000)
            .k(10)
            .run_with_sampler(&g, &mut mc)
            .unwrap()
            .details
        {
            crate::api::RunDetails::Mpds(r) => r,
            crate::api::RunDetails::Nds(_) => unreachable!("Query::mpds yields MPDS details"),
        };
        for (i, set) in sets.iter().enumerate() {
            // Same seed, same worlds: the two estimators must agree exactly.
            assert!((direct[i] - alg1.tau_hat(set)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_sets_and_unrelated_sets_score_zero() {
        let g = fig1();
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let taus = estimate_tau_for(
            &g,
            &mut mc,
            &DensityNotion::Edge,
            &[vec![], vec![2, 3]],
            500,
        );
        assert_eq!(taus[0], 0.0);
        assert_eq!(taus[1], 0.0); // {C, D} has no edge, never densest
    }
}
