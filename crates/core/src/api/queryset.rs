//! Batch multi-query evaluation over **one shared possible-world stream**.
//!
//! World materialization dominates every estimator's cost: sampling a world
//! means flipping every edge and rebuilding a CSR, while accumulating one
//! estimator from it is comparatively cheap. The paper's own evaluation
//! sweeps families of related settings — many `(notion, k, l_m, score)`
//! combinations — over the *same* sampled worlds, yet running them as
//! standalone [`Query`]s pays θ world materializations per member.
//!
//! [`QuerySet`] amortizes that: it holds many `Query` members and **one**
//! `(sampler, θ, seed)` world stream. Each world is materialized exactly once
//! (mask and CSR storage recycled, [`RunControl`] polled, [`ProgressSink`]
//! fed) and every member estimator accumulates from it, so an n-member batch
//! costs θ world materializations instead of n·θ.
//!
//! # Bit-identity contract
//!
//! A standalone serial [`Query::run`] builds its sampler from the query's
//! `(sampler kind, seed)` pair — the world stream does not depend on the
//! estimator at all. A `QuerySet` builds the *same* stream once and feeds
//! every member, so **each member's [`Run`] is bit-identical to the
//! standalone run** of that member with the set's `(sampler, θ, seed)` —
//! MPDS and NDS members simultaneously, for every [`SamplerKind`]. This is
//! the same common-random-numbers discipline [`crate::recompute`] uses
//! across graph versions, applied across estimators; pair the two with
//! [`QuerySet::run_with_sampler`] and a
//! [`crate::recompute::CommonRandomNumbers`] stream to get both at once.
//!
//! # Execution model
//!
//! A `QuerySet` is strictly serial: [`Exec::Threads`] splits θ into
//! per-worker sub-streams that members cannot share, so members configured
//! with it are rejected with a typed [`ApiError::Unsupported`] (the same
//! precedent as [`Query::run_with_sampler`] and [`crate::recompute`]).
//!
//! # Example
//!
//! ```
//! use densest::DensityNotion;
//! use mpds::api::queryset::QuerySet;
//! use mpds::api::Query;
//! use ugraph::UncertainGraph;
//!
//! // The paper's Fig. 1 example graph (A = 0, B = 1, C = 2, D = 3).
//! let g = UncertainGraph::from_weighted_edges(
//!     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
//!
//! // One world stream, two estimator families, three result sizes.
//! let batch = QuerySet::new()
//!     .theta(400)
//!     .seed(7)
//!     .push(Query::mpds(DensityNotion::Edge).k(1))
//!     .push(Query::mpds(DensityNotion::Edge).k(3))
//!     .push(Query::nds(DensityNotion::Edge).k(2))
//!     .run(&g)
//!     .expect("valid batch");
//! assert_eq!(batch.runs.len(), 3);
//! assert_eq!(batch.stats.worlds_sampled, 400); // θ worlds for all members
//!
//! // Bit-identical to the standalone run of each member:
//! let standalone = Query::mpds(DensityNotion::Edge)
//!     .k(1).theta(400).seed(7).run(&g).unwrap();
//! assert_eq!(batch.runs[0].top_k, standalone.top_k);
//! ```

use super::{
    sample_worlds, Accum, ApiError, Exec, Kind, MpdsAccum, NdsAccum, NoProgress, ProgressSink,
    Query, Run, SamplerKind, StableTracker, Stop, StopReason,
};
use crate::control::RunControl;
use crate::estimate::top_k_sets;
use sampling::WorldSampler;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ugraph::UncertainGraph;

/// A validated collection of [`Query`] members evaluated in a single
/// sampling loop over one shared `(sampler, θ, seed)` world stream.
///
/// Members keep their own estimator knobs (`kind`, `notion`, `k`, `l_m`,
/// `heuristic`, …); the stream knobs (`sampler`, `theta`, `seed`) and the
/// run hooks (`control`, `progress`) are **owned by the set** and supersede
/// whatever the members carry — that is what makes every member's result
/// bit-identical to its standalone run with the set's stream parameters
/// (see the [module docs](self)).
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::queryset::QuerySet;
/// use mpds::api::Query;
///
/// let set = QuerySet::new()
///     .theta(64)
///     .push(Query::mpds(DensityNotion::Edge))
///     .push(Query::nds(DensityNotion::Edge));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone)]
pub struct QuerySet {
    sampler: SamplerKind,
    theta: usize,
    seed: u64,
    stop: Stop,
    control: RunControl,
    progress: Option<Arc<dyn ProgressSink>>,
    members: Vec<Query>,
}

impl std::fmt::Debug for QuerySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySet")
            .field("sampler", &self.sampler)
            .field("theta", &self.theta)
            .field("seed", &self.seed)
            .field("stop", &self.stop)
            .field("control", &self.control)
            .field("progress", &self.progress.as_ref().map(|_| "<sink>"))
            .field("members", &self.members)
            .finish()
    }
}

impl Default for QuerySet {
    /// Same as [`QuerySet::new`].
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// assert!(QuerySet::default().is_empty());
    /// ```
    fn default() -> Self {
        QuerySet::new()
    }
}

impl QuerySet {
    /// An empty set with the paper-default stream: Monte-Carlo sampling,
    /// θ = 320, seed 42 (the same defaults as a standalone [`Query`]).
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// let set = QuerySet::new();
    /// assert!(set.is_empty());
    /// assert!(format!("{set:?}").contains("theta: 320"));
    /// ```
    pub fn new() -> Self {
        QuerySet {
            sampler: SamplerKind::MonteCarlo,
            theta: 320,
            seed: 42,
            stop: Stop::FixedTheta,
            control: RunControl::unbounded(),
            progress: None,
            members: Vec::new(),
        }
    }

    /// Chooses the shared sampling strategy (default
    /// [`SamplerKind::MonteCarlo`]).
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::SamplerKind;
    /// let set = QuerySet::new().sampler(SamplerKind::Rss);
    /// assert!(format!("{set:?}").contains("Rss"));
    /// ```
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets θ, the number of worlds sampled **once for the whole batch**
    /// (default 320).
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// let set = QuerySet::new().theta(64);
    /// assert!(format!("{set:?}").contains("theta: 64"));
    /// ```
    pub fn theta(mut self, theta: usize) -> Self {
        self.theta = theta;
        self
    }

    /// Alias of [`QuerySet::theta`] for readers who think in "#worlds".
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// let set = QuerySet::new().worlds(48);
    /// assert!(format!("{set:?}").contains("theta: 48"));
    /// ```
    pub fn worlds(self, worlds: usize) -> Self {
        self.theta(worlds)
    }

    /// Sets the shared stream's RNG seed (default 42). Equal
    /// `(sampler, θ, seed)` ⇒ equal worlds ⇒ every member equals its
    /// standalone run.
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// let set = QuerySet::new().seed(9);
    /// assert!(format!("{set:?}").contains("seed: 9"));
    /// ```
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the shared termination policy (default
    /// [`Stop::FixedTheta`]), superseding whatever the members carry — like
    /// every stream knob. Under [`Stop::Stable`] the batch stops at the
    /// first world where **every** member's top-k has been unchanged for
    /// the window; each member's result is then bit-identical to its
    /// standalone fixed-θ run at that joint stop point.
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::Stop;
    /// let set = QuerySet::new().stop(Stop::Stable {
    ///     window: 16,
    ///     min_theta: 16,
    ///     theta_cap: 4000,
    /// });
    /// assert!(format!("{set:?}").contains("Stable"));
    /// ```
    pub fn stop(mut self, stop: Stop) -> Self {
        self.stop = stop;
        self
    }

    /// Attaches a cooperative deadline / cancellation control, polled once
    /// per sampled world (default: unbounded). One interruption aborts the
    /// whole batch — members never return partial results. A graceful
    /// [`RunControl::with_budget`] budget instead stops the shared stream
    /// and every member reports [`StopReason::Budget`] over the same
    /// (shorter) world prefix.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::{ApiError, Query};
    /// use mpds::control::RunControl;
    /// use std::time::{Duration, Instant};
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let expired = RunControl::unbounded()
    ///     .with_deadline(Instant::now() - Duration::from_millis(1));
    /// let err = QuerySet::new()
    ///     .control(expired)
    ///     .push(Query::mpds(DensityNotion::Edge))
    ///     .run(&g);
    /// assert!(matches!(err, Err(ApiError::Interrupted(_))));
    /// ```
    pub fn control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Attaches a [`ProgressSink`], notified once per sampled world — once
    /// per **world**, not once per world per member, because each world is
    /// materialized exactly once.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::{ProgressCounter, Query};
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let c = ProgressCounter::new();
    /// QuerySet::new()
    ///     .theta(10)
    ///     .progress(c.clone())
    ///     .push(Query::mpds(DensityNotion::Edge))
    ///     .push(Query::nds(DensityNotion::Edge))
    ///     .run(&g)
    ///     .unwrap();
    /// assert_eq!(c.done(), 10); // θ, not members × θ
    /// ```
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Appends a member query. Its estimator knobs are kept; its stream
    /// knobs (`sampler`, `theta`, `seed`) and run hooks are superseded by
    /// the set's at [`QuerySet::run`] time.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::Query;
    /// let set = QuerySet::new()
    ///     .push(Query::mpds(DensityNotion::Edge).k(1))
    ///     .push(Query::mpds(DensityNotion::Edge).k(2));
    /// assert_eq!(set.len(), 2);
    /// ```
    pub fn push(mut self, query: Query) -> Self {
        self.members.push(query);
        self
    }

    /// Number of member queries.
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// assert_eq!(QuerySet::new().len(), 0);
    /// ```
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the set has no members (running an empty set is an
    /// [`ApiError::InvalidParameter`]).
    ///
    /// ```
    /// use mpds::api::queryset::QuerySet;
    /// assert!(QuerySet::new().is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Validates the set and rewrites every member onto the shared stream:
    /// estimator knobs kept, stream knobs and run hooks superseded.
    fn normalized_members(&self) -> Result<Vec<Query>, ApiError> {
        if self.members.is_empty() {
            return Err(ApiError::InvalidParameter {
                param: "members",
                message: "a QuerySet needs at least one member query".to_string(),
            });
        }
        if self.theta == 0 {
            return Err(ApiError::InvalidParameter {
                param: "theta",
                message: "need at least one sampled world".to_string(),
            });
        }
        if let Stop::Stable {
            window,
            min_theta,
            theta_cap,
        } = self.stop
        {
            let invalid = |message: String| {
                Err(ApiError::InvalidParameter {
                    param: "stop",
                    message,
                })
            };
            if window == 0 {
                return invalid("Stable window must be at least 1".to_string());
            }
            if theta_cap == 0 {
                return invalid("Stable theta_cap must be at least 1".to_string());
            }
            if min_theta > theta_cap {
                return invalid(format!(
                    "Stable min_theta {min_theta} exceeds theta_cap {theta_cap}"
                ));
            }
        }
        let mut members = Vec::with_capacity(self.members.len());
        for member in &self.members {
            if let Exec::Threads(_) = member.exec {
                return Err(ApiError::Unsupported {
                    message: "QuerySet members share one serial world stream; \
                              Exec::Threads splits θ into per-worker sub-streams no \
                              batch member can share — run threaded queries standalone \
                              via Query::run"
                        .to_string(),
                });
            }
            let mut q = member.clone();
            q.sampler = self.sampler;
            q.theta = self.theta;
            q.seed = self.seed;
            // Stability is decided jointly by the set (see run_serial), so
            // members run as plain fixed-θ estimators over the shared
            // stream.
            q.stop = Stop::FixedTheta;
            q.control = self.control.clone();
            q.progress = None;
            q.validate()?;
            members.push(q);
        }
        Ok(members)
    }

    /// Validates the set, builds the shared sampler from
    /// `(sampler kind, seed)`, and evaluates every member from one pass over
    /// θ worlds.
    ///
    /// Each returned [`Run`] is bit-identical (`top_k`, details, counters —
    /// wall time excepted) to the standalone [`Query::run`] of that member
    /// with the set's stream parameters.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::Query;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(
    ///     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    /// let batch = QuerySet::new()
    ///     .theta(300)
    ///     .seed(17)
    ///     .push(Query::mpds(DensityNotion::Edge).k(1))
    ///     .push(Query::nds(DensityNotion::Edge).k(2))
    ///     .run(&g)
    ///     .unwrap();
    /// let alone = Query::nds(DensityNotion::Edge)
    ///     .k(2).theta(300).seed(17).run(&g).unwrap();
    /// assert_eq!(batch.runs[1].top_k, alone.top_k);
    /// ```
    pub fn run(&self, g: &UncertainGraph) -> Result<BatchRun, ApiError> {
        let mut sampler = self.sampler.build(g, self.seed);
        self.run_serial(g, &mut *sampler)
    }

    /// Like [`QuerySet::run`] with a caller-supplied world stream instead of
    /// one resolved from `(sampler kind, seed)` — e.g. a
    /// [`crate::recompute::CommonRandomNumbers`] stream, so a whole batch
    /// can be re-evaluated against two graph versions under common random
    /// numbers.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::Query;
    /// use mpds::recompute::CommonRandomNumbers;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(
    ///     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
    /// let mut crn = CommonRandomNumbers::new(&g, 7);
    /// let batch = QuerySet::new()
    ///     .theta(200)
    ///     .push(Query::mpds(DensityNotion::Edge).k(1))
    ///     .run_with_sampler(&g, &mut crn)
    ///     .unwrap();
    /// // Same stream, standalone: bit-identical member result.
    /// let mut crn = CommonRandomNumbers::new(&g, 7);
    /// let alone = Query::mpds(DensityNotion::Edge)
    ///     .k(1).theta(200).run_with_sampler(&g, &mut crn).unwrap();
    /// assert_eq!(batch.runs[0].top_k, alone.top_k);
    /// ```
    pub fn run_with_sampler<S: WorldSampler + ?Sized>(
        &self,
        g: &UncertainGraph,
        sampler: &mut S,
    ) -> Result<BatchRun, ApiError> {
        self.run_serial(g, sampler)
    }

    fn run_serial<S: WorldSampler + ?Sized>(
        &self,
        g: &UncertainGraph,
        sampler: &mut S,
    ) -> Result<BatchRun, ApiError> {
        let members = self.normalized_members()?;
        let started = Instant::now();
        let progress: &dyn ProgressSink = match &self.progress {
            Some(sink) => sink.as_ref(),
            None => &NoProgress,
        };
        let limit = match self.stop {
            Stop::FixedTheta => self.theta,
            Stop::Stable { theta_cap, .. } => theta_cap,
        };
        progress.begin(limit);
        enum MemberAccum {
            Mpds(MpdsAccum),
            Nds(NdsAccum),
        }
        let mut accums: Vec<MemberAccum> = members
            .iter()
            .map(|q| match q.kind {
                Kind::Mpds => MemberAccum::Mpds(MpdsAccum::new(q)),
                Kind::Nds => MemberAccum::Nds(NdsAccum::new(q)),
            })
            .collect();
        // One tracker per member under Stop::Stable: the batch stops at the
        // first world where every member is simultaneously stable.
        let mut trackers: Option<Vec<StableTracker>> = match self.stop {
            Stop::FixedTheta => None,
            Stop::Stable {
                window, min_theta, ..
            } => Some(
                members
                    .iter()
                    .map(|_| StableTracker::new(window, min_theta))
                    .collect(),
            ),
        };
        let mut outcome = sample_worlds(g, sampler, limit, &self.control, progress, |world| {
            for (accum, q) in accums.iter_mut().zip(&members) {
                match accum {
                    MemberAccum::Mpds(a) => a.consume(world, q),
                    MemberAccum::Nds(a) => a.consume(world, q),
                }
            }
            match &mut trackers {
                None => true,
                Some(ts) => {
                    let mut all_stable = true;
                    for ((t, accum), q) in ts.iter_mut().zip(&accums).zip(&members) {
                        let current = match accum {
                            MemberAccum::Mpds(a) => top_k_sets(&a.candidates, q.k),
                            MemberAccum::Nds(a) => itemset::top_k_closed(
                                &a.transactions,
                                q.k,
                                q.min_size,
                                q.miner_node_cap,
                            )
                            .0
                            .into_iter()
                            .map(|c| c.items)
                            .collect(),
                        };
                        all_stable &= t.observe(current);
                    }
                    !all_stable
                }
            }
        })?;
        if outcome.reason == StopReason::Stable {
            if let Stop::Stable { window, .. } = self.stop {
                outcome.converged_at = Some(outcome.worlds.saturating_sub(window));
            }
        }
        let runs: Vec<Run> = accums
            .into_iter()
            .zip(&members)
            .map(|(accum, q)| match accum {
                MemberAccum::Mpds(a) => q.finish_mpds(a, outcome, started),
                MemberAccum::Nds(a) => q.finish_nds(a, outcome, started),
            })
            .collect();
        Ok(BatchRun {
            stats: BatchStats {
                worlds_sampled: outcome.worlds,
                stop_reason: outcome.reason,
                converged_at: outcome.converged_at,
                members: runs.len(),
                wall: started.elapsed(),
            },
            runs,
        })
    }
}

/// Shared-stream measurements of a [`BatchRun`]. Per-member statistics
/// (empty worlds, truncation, densest-count summaries) live in each member
/// [`Run::stats`]; this type records what the batch amortized.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::queryset::QuerySet;
/// use mpds::api::Query;
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.9), (1, 2, 0.9)]);
/// let batch = QuerySet::new()
///     .theta(40)
///     .push(Query::mpds(DensityNotion::Edge))
///     .push(Query::nds(DensityNotion::Edge))
///     .run(&g)
///     .unwrap();
/// assert_eq!(batch.stats.worlds_sampled, 40);
/// assert_eq!(batch.stats.members, 2);
/// assert_eq!(batch.stats.worlds_per_member(), 20.0); // vs 40 standalone
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchStats {
    /// Worlds materialized for the whole batch — independent of the member
    /// count (standalone runs would pay `members × worlds`). Equals θ under
    /// [`Stop::FixedTheta`] with no budget; smaller when [`Stop::Stable`]
    /// fired or the shared budget expired.
    pub worlds_sampled: usize,
    /// Why the shared stream stopped (every member shares it).
    pub stop_reason: StopReason,
    /// For stable stops: the world count after which no member's top-k
    /// changed again. `None` otherwise.
    pub converged_at: Option<usize>,
    /// Number of member queries evaluated.
    pub members: usize,
    /// Wall-clock time of the batch (sampling + every member's
    /// aggregation).
    pub wall: Duration,
}

impl BatchStats {
    /// Worlds materialized per member — the amortization metric
    /// (`θ / members`; a standalone run costs θ per member).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::queryset::QuerySet;
    /// use mpds::api::Query;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut set = QuerySet::new().theta(32);
    /// for k in 1..=4 {
    ///     set = set.push(Query::mpds(DensityNotion::Edge).k(k));
    /// }
    /// let batch = set.run(&g).unwrap();
    /// assert_eq!(batch.stats.worlds_per_member(), 8.0);
    /// ```
    pub fn worlds_per_member(&self) -> f64 {
        self.worlds_sampled as f64 / self.members as f64
    }
}

/// The result of [`QuerySet::run`]: one [`Run`] per member (in push order)
/// plus the shared-stream [`BatchStats`].
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::queryset::QuerySet;
/// use mpds::api::{Query, Score};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.3)]);
/// let batch = QuerySet::new()
///     .theta(50)
///     .push(Query::mpds(DensityNotion::Edge).k(1))
///     .push(Query::nds(DensityNotion::Edge).k(1))
///     .run(&g)
///     .unwrap();
/// assert_eq!(batch.runs[0].score, Score::TauHat);
/// assert_eq!(batch.runs[1].score, Score::GammaHat);
/// assert_eq!(batch.runs[0].top_k[0].0, vec![0, 1]); // the certain edge
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchRun {
    /// Per-member results, in the order the members were pushed.
    pub runs: Vec<Run>,
    /// What the shared stream did.
    pub stats: BatchStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::RunDetails;
    use crate::control::InterruptReason;
    use densest::DensityNotion;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    /// The load-bearing contract: every member of a mixed-family batch is
    /// bit-identical to its standalone run at the set's (sampler, θ, seed),
    /// for all three samplers.
    #[test]
    fn members_match_standalone_runs_for_every_sampler() {
        let g = fig1();
        for kind in [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss] {
            let members = [
                Query::mpds(DensityNotion::Edge).k(2),
                Query::mpds(DensityNotion::Edge).k(4).heuristic(true),
                Query::nds(DensityNotion::Edge).k(3).min_size(2),
                Query::nds(DensityNotion::Edge).k(2).min_size(0),
            ];
            let mut set = QuerySet::new().sampler(kind).theta(150).seed(23);
            for m in &members {
                set = set.push(m.clone());
            }
            let batch = set.run(&g).unwrap();
            assert_eq!(batch.runs.len(), members.len());
            for (run, member) in batch.runs.iter().zip(&members) {
                let alone = member
                    .clone()
                    .sampler(kind)
                    .theta(150)
                    .seed(23)
                    .run(&g)
                    .unwrap();
                assert_eq!(run.top_k, alone.top_k, "{}", kind.name());
                assert_eq!(run.stats.empty_worlds, alone.stats.empty_worlds);
                match (&run.details, &alone.details) {
                    (RunDetails::Mpds(a), RunDetails::Mpds(b)) => {
                        assert_eq!(a.candidates, b.candidates);
                        assert_eq!(a.densest_counts, b.densest_counts);
                    }
                    (RunDetails::Nds(a), RunDetails::Nds(b)) => {
                        assert_eq!(a.transactions, b.transactions);
                    }
                    _ => panic!("family mismatch"),
                }
            }
        }
    }

    /// Members' own stream knobs are superseded by the set's.
    #[test]
    fn set_stream_knobs_supersede_member_knobs() {
        let g = fig1();
        let batch = QuerySet::new()
            .theta(80)
            .seed(5)
            .push(
                Query::mpds(DensityNotion::Edge)
                    .theta(9999)
                    .seed(12345)
                    .sampler(SamplerKind::Rss)
                    .k(2),
            )
            .run(&g)
            .unwrap();
        let alone = Query::mpds(DensityNotion::Edge)
            .theta(80)
            .seed(5)
            .k(2)
            .run(&g)
            .unwrap();
        assert_eq!(batch.runs[0].top_k, alone.top_k);
        assert_eq!(batch.runs[0].stats.worlds_sampled, 80);
    }

    #[test]
    fn threads_member_is_rejected_with_unsupported() {
        let g = fig1();
        let err = QuerySet::new()
            .theta(40)
            .push(Query::mpds(DensityNotion::Edge).exec(Exec::Threads(2)))
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, ApiError::Unsupported { .. }), "{err}");
        assert!(err.to_string().contains("serial world stream"), "{err}");
    }

    #[test]
    fn empty_set_and_zero_theta_are_invalid() {
        let g = fig1();
        let err = QuerySet::new().run(&g).unwrap_err();
        assert!(
            matches!(
                err,
                ApiError::InvalidParameter {
                    param: "members",
                    ..
                }
            ),
            "{err}"
        );
        let err = QuerySet::new()
            .theta(0)
            .push(Query::mpds(DensityNotion::Edge))
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(err, ApiError::InvalidParameter { param: "theta", .. }),
            "{err}"
        );
    }

    #[test]
    fn interruption_aborts_the_whole_batch() {
        use std::time::Duration;
        let g = fig1();
        let expired =
            RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        let err = QuerySet::new()
            .theta(1000)
            .control(expired)
            .push(Query::mpds(DensityNotion::Edge))
            .push(Query::nds(DensityNotion::Edge))
            .run(&g)
            .unwrap_err();
        match err {
            ApiError::Interrupted(i) => {
                assert_eq!(i.reason, InterruptReason::DeadlineExceeded);
                assert_eq!(i.completed_worlds, 0);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    /// Under `Stop::Stable` the batch stops at the first world where every
    /// member is simultaneously stable, and each member equals its
    /// standalone fixed-θ run at that joint stop point.
    #[test]
    fn stable_batch_stops_jointly_and_members_match_fixed_theta() {
        use crate::api::Stop;
        let g = fig1();
        let members = [
            Query::mpds(DensityNotion::Edge).k(2),
            Query::nds(DensityNotion::Edge).k(2).min_size(2),
        ];
        let mut set = QuerySet::new().seed(19).stop(Stop::Stable {
            window: 24,
            min_theta: 24,
            theta_cap: 6000,
        });
        for m in &members {
            set = set.push(m.clone());
        }
        let batch = set.run(&g).unwrap();
        assert_eq!(batch.stats.stop_reason, StopReason::Stable);
        let t = batch.stats.worlds_sampled;
        assert!(t < 6000, "expected an early stop, sampled {t}");
        assert_eq!(batch.stats.converged_at, Some(t - 24));
        for (run, member) in batch.runs.iter().zip(&members) {
            assert_eq!(run.stats.worlds_sampled, t);
            assert_eq!(run.stats.stop_reason, StopReason::Stable);
            let alone = member.clone().theta(t).seed(19).run(&g).unwrap();
            assert_eq!(run.top_k, alone.top_k);
        }
    }

    /// An expired shared budget stops the batch gracefully after one world;
    /// every member reports Budget over the same prefix.
    #[test]
    fn expired_budget_stops_the_batch_after_one_world() {
        use std::time::Duration;
        let g = fig1();
        let spent = RunControl::unbounded().with_budget(Instant::now() - Duration::from_millis(1));
        let batch = QuerySet::new()
            .theta(5000)
            .control(spent)
            .push(Query::mpds(DensityNotion::Edge))
            .push(Query::nds(DensityNotion::Edge))
            .run(&g)
            .unwrap();
        assert_eq!(batch.stats.stop_reason, StopReason::Budget);
        assert_eq!(batch.stats.worlds_sampled, 1);
        for run in &batch.runs {
            assert_eq!(run.stats.stop_reason, StopReason::Budget);
            assert_eq!(run.stats.worlds_sampled, 1);
        }
    }

    #[test]
    fn invalid_set_stop_is_rejected() {
        use crate::api::Stop;
        let g = fig1();
        let err = QuerySet::new()
            .stop(Stop::Stable {
                window: 0,
                min_theta: 1,
                theta_cap: 10,
            })
            .push(Query::mpds(DensityNotion::Edge))
            .run(&g)
            .unwrap_err();
        assert!(
            matches!(err, ApiError::InvalidParameter { param: "stop", .. }),
            "{err}"
        );
    }

    #[test]
    fn batch_stats_record_amortization() {
        let g = fig1();
        let mut set = QuerySet::new().theta(60);
        for k in 1..=6 {
            set = set.push(Query::mpds(DensityNotion::Edge).k(k));
        }
        let batch = set.run(&g).unwrap();
        assert_eq!(batch.stats.worlds_sampled, 60);
        assert_eq!(batch.stats.members, 6);
        assert_eq!(batch.stats.worlds_per_member(), 10.0);
        assert!(batch.stats.wall.as_nanos() > 0);
        for run in &batch.runs {
            assert_eq!(run.stats.worlds_sampled, 60);
        }
    }
}
