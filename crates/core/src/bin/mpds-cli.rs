//! Command-line front end: run top-k MPDS or NDS on a weighted edge list.
//!
//! ```text
//! mpds-cli <command> <edge-list-file> [options]
//!
//! commands:
//!   mpds        top-k most probable densest subgraphs (Algorithm 1)
//!   nds         top-k nucleus densest subgraphs (Algorithm 5)
//!   stats       dataset summary (nodes, edges, probability distribution)
//!
//! options:
//!   --theta N       number of sampled worlds        [default 320]
//!   --k N           result count                    [default 5]
//!   --lm N          minimum NDS size                [default 2]
//!   --density D     edge | Nclique | 2star | 3star | c3star | diamond
//!                                                   [default edge]
//!   --seed N        sampler seed                    [default 42]
//!   --heuristic     use the core-based heuristic per world
//! ```
//!
//! The edge-list format is one `u v p` triple per line (`#` comments
//! allowed); node labels are arbitrary u32s.

use densest::DensityNotion;
use mpds::estimate::{top_k_mpds, MpdsConfig};
use mpds::nds::{top_k_nds, NdsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::MonteCarlo;
use std::process::ExitCode;
use ugraph::{io, Pattern};

struct Options {
    command: String,
    path: String,
    theta: usize,
    k: usize,
    lm: usize,
    density: DensityNotion,
    seed: u64,
    heuristic: bool,
}

fn parse_density(s: &str) -> Result<DensityNotion, String> {
    match s {
        "edge" => Ok(DensityNotion::Edge),
        "2star" => Ok(DensityNotion::Pattern(Pattern::two_star())),
        "3star" => Ok(DensityNotion::Pattern(Pattern::three_star())),
        "c3star" => Ok(DensityNotion::Pattern(Pattern::c3_star())),
        "diamond" => Ok(DensityNotion::Pattern(Pattern::diamond())),
        other => {
            if let Some(h) = other.strip_suffix("clique") {
                let h: usize = h
                    .parse()
                    .map_err(|_| format!("bad clique size in {other:?}"))?;
                if !(2..=8).contains(&h) {
                    return Err(format!("clique size {h} outside 2..=8"));
                }
                Ok(DensityNotion::Clique(h))
            } else {
                Err(format!("unknown density {other:?}"))
            }
        }
    }
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let command = args.next().ok_or("missing command")?;
    if !["mpds", "nds", "stats"].contains(&command.as_str()) {
        return Err(format!("unknown command {command:?}"));
    }
    let path = args.next().ok_or("missing edge-list path")?;
    let mut o = Options {
        command,
        path,
        theta: 320,
        k: 5,
        lm: 2,
        density: DensityNotion::Edge,
        seed: 42,
        heuristic: false,
    };
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--theta" => o.theta = val("--theta")?.parse().map_err(|e| format!("{e}"))?,
            "--k" => o.k = val("--k")?.parse().map_err(|e| format!("{e}"))?,
            "--lm" => o.lm = val("--lm")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--density" => o.density = parse_density(&val("--density")?)?,
            "--heuristic" => o.heuristic = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: mpds-cli <mpds|nds|stats> <edge-list> \\");
            eprintln!("  [--theta N] [--k N] [--lm N] [--density D] [--seed N] [--heuristic]");
            return ExitCode::FAILURE;
        }
    };
    let file = match std::fs::File::open(&opts.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot open {}: {e}", opts.path);
            return ExitCode::FAILURE;
        }
    };
    let (g, labels) = match io::read_weighted_edge_list(file) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let show = |set: &[u32]| -> String {
        let named: Vec<String> = set
            .iter()
            .map(|&v| labels[v as usize].to_string())
            .collect();
        format!("{{{}}}", named.join(", "))
    };

    match opts.command.as_str() {
        "stats" => {
            let (mean, std, q) = ugraph::probability::prob_stats(g.probs());
            println!("nodes: {}", g.num_nodes());
            println!("edges: {}", g.num_edges());
            println!("probabilities: mean {mean:.4}, std {std:.4}, quartiles {q:?}");
        }
        "mpds" => {
            let mut cfg = MpdsConfig::new(opts.density.clone(), opts.theta, opts.k);
            cfg.heuristic = opts.heuristic;
            let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(opts.seed));
            let res = top_k_mpds(&g, &mut mc, &cfg);
            println!(
                "top-{} MPDS ({} density, theta = {}):",
                opts.k,
                opts.density.label(),
                opts.theta
            );
            for (i, (set, tau)) in res.top_k.iter().enumerate() {
                println!("  #{:<2} tau_hat = {:.4}  {}", i + 1, tau, show(set));
            }
            if res.top_k.is_empty() {
                println!("  (no sampled world contained an instance)");
            }
        }
        "nds" => {
            let mut cfg = NdsConfig::new(opts.density.clone(), opts.theta, opts.k, opts.lm);
            cfg.heuristic = opts.heuristic;
            let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(opts.seed));
            let res = top_k_nds(&g, &mut mc, &cfg);
            println!(
                "top-{} NDS ({} density, theta = {}, lm = {}):",
                opts.k,
                opts.density.label(),
                opts.theta,
                opts.lm
            );
            for (i, (set, gamma)) in res.top_k.iter().enumerate() {
                println!("  #{:<2} gamma_hat = {:.4}  {}", i + 1, gamma, show(set));
            }
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}
