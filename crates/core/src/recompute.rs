//! Delta-aware re-estimation: compare two versions of an uncertain graph
//! under **common random numbers** (CRN).
//!
//! When a dynamic graph moves from generation `g` to `g + 1`, the question a
//! serving layer has to answer is "what actually changed in the top-k?" —
//! and answering it with two *independent* sampling runs is noisy: the
//! Monte-Carlo error of both runs lands in the difference, so small τ̂/γ̂
//! shifts drown in resampling variance. The classic fix is common random
//! numbers: make both runs draw the **same underlying randomness per edge**,
//! so every edge that did not change keeps exactly the same presence pattern
//! across the sampled worlds and the difference isolates the mutation.
//!
//! Ordinary sequential samplers cannot deliver that — one inserted edge
//! shifts every later edge's position in the RNG stream. The
//! [`CommonRandomNumbers`] sampler therefore derives each edge's draw
//! *counter-based*, from a hash of `(stream seed, world index, endpoints)`:
//! presence depends only on the edge's own identity and probability, never
//! on which other edges exist. Sub-streams use the same
//! [`sampling::stream_seed`] derivation as `Exec::Threads` workers, so
//! batch-splitting stays decorrelated.
//!
//! [`Recompute`] packages the pattern: one [`Query`] run over the *before*
//! and *after* snapshots with per-snapshot CRN samplers, returning both
//! full [`Run`]s plus a structured [`TopKDiff`] (entered / left / re-ranked
//! node sets with their τ̂/γ̂ deltas). The query's [`RunControl`] applies to
//! both runs, so re-estimation is as cancellable as everything else.

use crate::api::{ApiError, Query, Run};
use crate::control::RunControl;
use sampling::{stream_seed, WorldSampler};
use ugraph::{EdgeMask, NodeId, NodeSet, UncertainGraph};

/// SplitMix64-style finalizer: the avalanche stage behind every CRN draw.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The uniform `[0, 1)` draw of edge `(u, v)` in world `world` of stream
/// `seed` — a pure function of those four values, which is the whole point:
/// unchanged edges keep identical draws across graph versions.
fn edge_draw(seed: u64, world: u64, u: NodeId, v: NodeId) -> f64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let edge_key = ((a as u64) << 32) | b as u64;
    let h = mix(seed
        ^ mix(world.wrapping_add(0x9e37_79b9_7f4a_7c15))
        ^ mix(edge_key.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(1)));
    // Top 53 bits → [0, 1) at full f64 resolution.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Counter-based possible-world sampler whose per-edge draws depend only on
/// `(stream seed, world index, edge endpoints)` — the sampler that makes
/// common-random-number comparisons across graph versions possible.
///
/// Unbiased like Monte Carlo (each edge is an independent Bernoulli with
/// its own probability), deterministic per `(seed, stream)`, and **stable
/// under edge-set changes**: inserting or deleting edges never perturbs the
/// draws of the edges that stayed.
///
/// ```
/// use mpds::recompute::CommonRandomNumbers;
/// use sampling::WorldSampler;
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
/// let a = CommonRandomNumbers::new(&g, 7).next_mask();
/// let b = CommonRandomNumbers::new(&g, 7).next_mask();
/// assert_eq!(a, b); // reproducible per (seed, stream)
/// ```
pub struct CommonRandomNumbers {
    edges: Vec<(NodeId, NodeId)>,
    probs: Vec<f64>,
    seed: u64,
    world: u64,
}

impl CommonRandomNumbers {
    /// Builds the sampler for stream 0 of `root_seed` over `g`'s edges.
    ///
    /// ```
    /// use mpds::recompute::CommonRandomNumbers;
    /// use sampling::WorldSampler;
    /// use ugraph::UncertainGraph;
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// assert_eq!(CommonRandomNumbers::new(&g, 1).num_edges(), 1);
    /// ```
    pub fn new(g: &UncertainGraph, root_seed: u64) -> Self {
        CommonRandomNumbers::with_stream(g, root_seed, 0)
    }

    /// Builds the sampler for sub-stream `stream` of `root_seed` — the same
    /// [`stream_seed`] derivation `Exec::Threads` workers use, so CRN
    /// batches split across workers stay decorrelated from each other while
    /// remaining comparable world-for-world across graph versions.
    ///
    /// ```
    /// use mpds::recompute::CommonRandomNumbers;
    /// use sampling::WorldSampler;
    /// use ugraph::UncertainGraph;
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let s0 = CommonRandomNumbers::with_stream(&g, 1, 0).next_mask();
    /// let s0_again = CommonRandomNumbers::with_stream(&g, 1, 0).next_mask();
    /// assert_eq!(s0, s0_again);
    /// ```
    pub fn with_stream(g: &UncertainGraph, root_seed: u64, stream: u64) -> Self {
        CommonRandomNumbers {
            edges: g.graph().edges().to_vec(),
            probs: g.probs().to_vec(),
            seed: stream_seed(root_seed, stream),
            world: 0,
        }
    }
}

impl WorldSampler for CommonRandomNumbers {
    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        mask.reset(self.edges.len());
        for (i, (&(u, v), &p)) in self.edges.iter().zip(&self.probs).enumerate() {
            if edge_draw(self.seed, self.world, u, v) < p {
                mask.insert(i);
            }
        }
        self.world += 1;
    }

    fn aux_memory_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<(NodeId, NodeId)>()
            + self.probs.len() * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "CRN"
    }
}

/// One node set present in both the before and after top-k.
///
/// Ranks are 0-based positions in the respective `top_k` vectors.
///
/// ```
/// use mpds::recompute::RankShift;
/// let r = RankShift {
///     set: vec![1, 3],
///     rank_before: 0,
///     rank_after: 1,
///     score_before: 0.4,
///     score_after: 0.3,
/// };
/// assert!((r.score_delta() + 0.1).abs() < 1e-12);
/// assert!(r.moved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RankShift {
    /// The node set (compact ids, sorted).
    pub set: NodeSet,
    /// 0-based rank in the *before* top-k.
    pub rank_before: usize,
    /// 0-based rank in the *after* top-k.
    pub rank_after: usize,
    /// τ̂/γ̂ in the *before* run.
    pub score_before: f64,
    /// τ̂/γ̂ in the *after* run.
    pub score_after: f64,
}

impl RankShift {
    /// `score_after - score_before` (the τ̂/γ̂ delta).
    pub fn score_delta(&self) -> f64 {
        self.score_after - self.score_before
    }

    /// Whether the set's rank changed.
    pub fn moved(&self) -> bool {
        self.rank_before != self.rank_after
    }
}

/// Structured difference between two top-k rankings (see
/// [`TopKDiff::between`]).
///
/// ```
/// use mpds::recompute::TopKDiff;
/// let before = vec![(vec![0u32, 1], 0.5), (vec![2, 3], 0.3)];
/// let after = vec![(vec![2u32, 3], 0.6), (vec![4, 5], 0.2)];
/// let diff = TopKDiff::between(&before, &after);
/// assert_eq!(diff.entered, vec![(vec![4, 5], 0.2)]);
/// assert_eq!(diff.left, vec![(vec![0, 1], 0.5)]);
/// assert_eq!(diff.reranked().count(), 1); // {2,3} moved 1 → 0
/// assert!(!diff.is_unchanged());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKDiff {
    /// Sets in the after top-k only, with their after scores.
    pub entered: Vec<(NodeSet, f64)>,
    /// Sets in the before top-k only, with their before scores.
    pub left: Vec<(NodeSet, f64)>,
    /// Sets present in both rankings, ordered by after-rank.
    pub common: Vec<RankShift>,
}

impl TopKDiff {
    /// Diffs two ranked `(node set, score)` lists.
    ///
    /// ```
    /// use mpds::recompute::TopKDiff;
    /// let same = vec![(vec![0u32, 1], 0.5)];
    /// assert!(TopKDiff::between(&same, &same).is_unchanged());
    /// ```
    pub fn between(before: &[(NodeSet, f64)], after: &[(NodeSet, f64)]) -> TopKDiff {
        let before_rank: std::collections::HashMap<&NodeSet, (usize, f64)> = before
            .iter()
            .enumerate()
            .map(|(i, (set, score))| (set, (i, *score)))
            .collect();
        let after_sets: std::collections::HashSet<&NodeSet> =
            after.iter().map(|(set, _)| set).collect();
        let mut diff = TopKDiff::default();
        for (i, (set, score)) in after.iter().enumerate() {
            match before_rank.get(set) {
                Some(&(rank_before, score_before)) => diff.common.push(RankShift {
                    set: set.clone(),
                    rank_before,
                    rank_after: i,
                    score_before,
                    score_after: *score,
                }),
                None => diff.entered.push((set.clone(), *score)),
            }
        }
        for (set, score) in before {
            if !after_sets.contains(set) {
                diff.left.push((set.clone(), *score));
            }
        }
        diff
    }

    /// The common sets whose rank changed.
    pub fn reranked(&self) -> impl Iterator<Item = &RankShift> {
        self.common.iter().filter(|r| r.moved())
    }

    /// `true` when the two rankings contain the same sets at the same ranks
    /// (score drift alone does not count as a change).
    pub fn is_unchanged(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty() && self.reranked().next().is_none()
    }

    /// Largest `|score_after - score_before|` over the common sets
    /// (0 when nothing is common).
    pub fn max_abs_score_delta(&self) -> f64 {
        self.common
            .iter()
            .map(|r| r.score_delta().abs())
            .fold(0.0, f64::max)
    }
}

/// The full outcome of a [`Recompute::run`]: both runs plus the diff.
#[derive(Debug, Clone)]
pub struct RecomputeReport {
    /// The run over the *before* snapshot.
    pub before: Run,
    /// The run over the *after* snapshot.
    pub after: Run,
    /// Structured top-k difference.
    pub diff: TopKDiff,
}

/// Runs one [`Query`] over two graph versions under common random numbers
/// and diffs the top-k rankings.
///
/// Serial execution only: CRN sampling is a single per-snapshot stream, so
/// a query configured with `Exec::Threads` is rejected as `Unsupported`
/// (the same rule as [`Query::run_with_sampler`]). The query's
/// [`RunControl`] is polled per world in both runs.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::Query;
/// use mpds::recompute::Recompute;
/// use ugraph::UncertainGraph;
///
/// // Fig. 1 before; after, the (B, D) edge is re-scored 0.7 → 0.2.
/// let before = UncertainGraph::from_weighted_edges(
///     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
/// let after = UncertainGraph::from_weighted_edges(
///     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.2)]);
/// let report = Recompute::new(Query::mpds(DensityNotion::Edge).theta(600).k(2).seed(42))
///     .run(&before, &after)
///     .unwrap();
/// // {B, D} = {1, 3} was the before-MPDS; re-scoring its edge dethrones it.
/// assert_eq!(report.before.top_k[0].0, vec![1, 3]);
/// assert_ne!(report.after.top_k[0].0, vec![1, 3]);
/// assert!(!report.diff.is_unchanged());
/// ```
#[derive(Debug, Clone)]
pub struct Recompute {
    query: Query,
}

impl Recompute {
    /// Wraps the query to run over both snapshots. Its seed feeds the CRN
    /// streams; its control and all estimator knobs apply to both runs.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use mpds::recompute::Recompute;
    /// let r = Recompute::new(Query::mpds(DensityNotion::Edge).theta(50));
    /// assert!(format!("{r:?}").contains("theta: 50"));
    /// ```
    pub fn new(query: Query) -> Self {
        Recompute { query }
    }

    /// Replaces the query's [`RunControl`] (deadline / cancellation applies
    /// to both the before and after run).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use mpds::control::RunControl;
    /// use mpds::recompute::Recompute;
    /// let _ = Recompute::new(Query::mpds(DensityNotion::Edge))
    ///     .control(RunControl::unbounded());
    /// ```
    pub fn control(mut self, control: RunControl) -> Self {
        self.query = self.query.control(control);
        self
    }

    /// Runs the query over `before` and `after` with per-snapshot CRN
    /// samplers sharing the query's seed, and diffs the rankings.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use mpds::recompute::Recompute;
    /// use ugraph::UncertainGraph;
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.8)]);
    /// let report = Recompute::new(Query::mpds(DensityNotion::Edge).theta(50))
    ///     .run(&g, &g)
    ///     .unwrap();
    /// assert!(report.diff.is_unchanged()); // identical inputs, identical draws
    /// ```
    pub fn run(
        &self,
        before: &UncertainGraph,
        after: &UncertainGraph,
    ) -> Result<RecomputeReport, ApiError> {
        let seed = self.query.seed_value();
        let mut sampler_before = CommonRandomNumbers::new(before, seed);
        let run_before = self.query.run_with_sampler(before, &mut sampler_before)?;
        let mut sampler_after = CommonRandomNumbers::new(after, seed);
        let run_after = self.query.run_with_sampler(after, &mut sampler_after)?;
        let diff = TopKDiff::between(&run_before.top_k, &run_after.top_k);
        Ok(RecomputeReport {
            before: run_before,
            after: run_after,
            diff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Exec;
    use crate::control::InterruptReason;
    use densest::DensityNotion;
    use std::time::{Duration, Instant};

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn crn_is_unbiased() {
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.9), (0, 2, 0.5), (1, 2, 0.2), (2, 3, 0.7)],
        );
        let mut s = CommonRandomNumbers::new(&g, 3);
        let rounds = 20_000usize;
        let mut counts = vec![0usize; g.num_edges()];
        for _ in 0..rounds {
            let mask = s.next_mask();
            for (i, &b) in mask.iter().enumerate() {
                if b {
                    counts[i] += 1;
                }
            }
        }
        for (i, (&c, &p)) in counts.iter().zip(g.probs()).enumerate() {
            let f = c as f64 / rounds as f64;
            assert!((f - p).abs() < 0.02, "edge {i}: frequency {f} vs p {p}");
        }
    }

    #[test]
    fn unchanged_edges_keep_identical_draws_across_versions() {
        // `after` inserts one edge and deletes another; every edge common to
        // both versions must keep its exact per-world presence pattern.
        let before = UncertainGraph::from_weighted_edges(
            5,
            &[(0, 1, 0.6), (1, 2, 0.4), (2, 3, 0.5), (3, 4, 0.3)],
        );
        let after = UncertainGraph::from_weighted_edges(
            5,
            &[(0, 1, 0.6), (0, 4, 0.8), (2, 3, 0.5), (3, 4, 0.3)],
        );
        let mut sb = CommonRandomNumbers::new(&before, 99);
        let mut sa = CommonRandomNumbers::new(&after, 99);
        // Map shared edges to their index in each version.
        let shared: Vec<((u32, u32), usize, usize)> = before
            .graph()
            .edges()
            .iter()
            .enumerate()
            .filter_map(|(ib, &e)| {
                after
                    .graph()
                    .edges()
                    .iter()
                    .position(|&f| f == e)
                    .map(|ia| (e, ib, ia))
            })
            .collect();
        assert_eq!(shared.len(), 3);
        for world in 0..200 {
            let mb = sb.next_mask();
            let ma = sa.next_mask();
            for &(e, ib, ia) in &shared {
                assert_eq!(mb[ib], ma[ia], "edge {e:?} draw diverged in world {world}");
            }
        }
    }

    #[test]
    fn crn_streams_differ_but_are_reproducible() {
        let g = fig1();
        let a0 = CommonRandomNumbers::with_stream(&g, 5, 0).next_mask();
        let a1 = CommonRandomNumbers::with_stream(&g, 5, 1).next_mask();
        let b0 = CommonRandomNumbers::with_stream(&g, 5, 0).next_mask();
        assert_eq!(a0, b0);
        // Streams 0 and 1 are decorrelated; over a few worlds they must
        // diverge somewhere.
        let mut s0 = CommonRandomNumbers::with_stream(&g, 5, 0);
        let mut s1 = CommonRandomNumbers::with_stream(&g, 5, 1);
        assert!(
            (0..50).any(|_| s0.next_mask() != s1.next_mask()),
            "sub-streams must not be identical; first worlds {a0:?} vs {a1:?}"
        );
    }

    #[test]
    fn identical_graphs_give_identical_runs_and_empty_diff() {
        let g = fig1();
        let report = Recompute::new(Query::mpds(DensityNotion::Edge).theta(300).k(3).seed(11))
            .run(&g, &g)
            .unwrap();
        assert_eq!(report.before.top_k, report.after.top_k);
        assert!(report.diff.is_unchanged());
        assert_eq!(report.diff.entered, vec![]);
        assert_eq!(report.diff.left, vec![]);
        assert_eq!(report.diff.max_abs_score_delta(), 0.0);
    }

    #[test]
    fn reweight_shows_up_as_score_delta_under_crn() {
        // Re-score (1, 3) from 0.7 to 0.9: under CRN the other edges keep
        // their draws, so {1, 3}'s tau-hat must move up and the diff must
        // attribute a positive delta to it.
        let before = fig1();
        let after =
            UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.9)]);
        let report = Recompute::new(Query::mpds(DensityNotion::Edge).theta(500).k(4).seed(7))
            .run(&before, &after)
            .unwrap();
        let bd = report
            .diff
            .common
            .iter()
            .find(|r| r.set == vec![1, 3])
            .expect("{1,3} ranks in both runs");
        assert!(
            bd.score_delta() > 0.05,
            "raising p(B,D) must raise tau_hat({{B,D}}): {bd:?}"
        );
    }

    #[test]
    fn diff_classifies_entered_left_and_reranked() {
        let before = vec![(vec![0u32, 1], 0.5), (vec![2, 3], 0.4), (vec![4, 5], 0.3)];
        let after = vec![(vec![2u32, 3], 0.6), (vec![0, 1], 0.45), (vec![6, 7], 0.2)];
        let diff = TopKDiff::between(&before, &after);
        assert_eq!(diff.entered, vec![(vec![6, 7], 0.2)]);
        assert_eq!(diff.left, vec![(vec![4, 5], 0.3)]);
        assert_eq!(diff.common.len(), 2);
        assert_eq!(diff.reranked().count(), 2); // both swapped positions
        assert!((diff.max_abs_score_delta() - 0.2).abs() < 1e-12);
        let r = &diff.common[0];
        assert_eq!((r.rank_before, r.rank_after), (1, 0));
    }

    #[test]
    fn recompute_is_cancellable_and_rejects_threads() {
        let g = fig1();
        let expired =
            RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        let err = Recompute::new(Query::mpds(DensityNotion::Edge).theta(10_000))
            .control(expired)
            .run(&g, &g)
            .unwrap_err();
        match err {
            ApiError::Interrupted(i) => {
                assert_eq!(i.reason, InterruptReason::DeadlineExceeded)
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        let err = Recompute::new(
            Query::mpds(DensityNotion::Edge)
                .theta(100)
                .exec(Exec::Threads(2)),
        )
        .run(&g, &g)
        .unwrap_err();
        assert!(matches!(err, ApiError::Unsupported { .. }));
    }
}
