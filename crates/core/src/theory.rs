//! End-to-end accuracy guarantees (paper Theorems 2, 3, 5, 6).
//!
//! These are the sample-size bounds that justify Algorithm 1 and Algorithm 5:
//! given the (true) probabilities of the top sets, they lower-bound the
//! probability that the estimators return exactly the true top-k, and
//! conversely yield the θ needed for a target confidence.

/// Theorem 2: probability that all true top-k sets appear among the
/// candidates after θ rounds, `≥ 1 − Σ_i (1 − τ(V_i))^θ`.
///
/// `top_taus` are the true densest subgraph probabilities of the top-k sets.
pub fn candidate_inclusion_bound(top_taus: &[f64], theta: usize) -> f64 {
    let miss: f64 = top_taus
        .iter()
        .map(|&tau| (1.0 - tau).powi(theta as i32))
        .sum();
    (1.0 - miss).max(0.0)
}

/// Theorem 3: probability that Algorithm 1 returns exactly the true top-k.
///
/// * `top_taus`: true τ of the top-k sets (descending), length k;
/// * `tau_k1`: τ of the (k+1)-th best set (0 if none);
/// * `other_taus`: τ of the remaining candidate sets (each < `mid`);
/// * `theta`: number of samples.
///
/// Bound: `[1 − Σ_{i≤k} (1−τ_i)^θ] · [1 − Σ_{U ∈ CV} exp(−2 d_U² θ)]` with
/// `mid = (τ_k + τ_{k+1}) / 2` and `d_U = |τ(U) − mid|`.
pub fn top_k_return_bound(top_taus: &[f64], tau_k1: f64, other_taus: &[f64], theta: usize) -> f64 {
    assert!(!top_taus.is_empty());
    let tau_k = *top_taus.last().unwrap();
    let mid = 0.5 * (tau_k + tau_k1);
    let inclusion = candidate_inclusion_bound(top_taus, theta);
    let mut hoeffding_miss = 0.0;
    for &tau in top_taus {
        let d = tau - mid;
        hoeffding_miss += (-2.0 * d * d * theta as f64).exp();
    }
    for &tau in other_taus {
        let d = mid - tau;
        hoeffding_miss += (-2.0 * d * d * theta as f64).exp();
    }
    (inclusion * (1.0 - hoeffding_miss)).max(0.0)
}

/// Theorem 5: probability that the true top-k closed sets remain closed
/// w.r.t. `γ̂` after θ rounds, `≥ 1 − Σ_{G ∈ 𝒢} (1 − Pr(G))^θ`, where
/// `world_probs` are the probabilities of the possible worlds whose densest
/// subgraphs contain some true top-k set.
pub fn closedness_bound(world_probs: &[f64], theta: usize) -> f64 {
    let miss: f64 = world_probs
        .iter()
        .map(|&p| (1.0 - p).powi(theta as i32))
        .sum();
    (1.0 - miss).max(0.0)
}

/// Theorem 6: probability that Algorithm 5 returns exactly the true top-k
/// closed node sets. Mirrors [`top_k_return_bound`] with γ in place of τ and
/// the closedness bound in place of candidate inclusion.
pub fn nds_return_bound(
    world_probs: &[f64],
    top_gammas: &[f64],
    gamma_k1: f64,
    other_gammas: &[f64],
    theta: usize,
) -> f64 {
    assert!(!top_gammas.is_empty());
    let gamma_k = *top_gammas.last().unwrap();
    let mid = 0.5 * (gamma_k + gamma_k1);
    let closed = closedness_bound(world_probs, theta);
    let mut miss = 0.0;
    for &g in top_gammas {
        let d = g - mid;
        miss += (-2.0 * d * d * theta as f64).exp();
    }
    for &g in other_gammas {
        let d = mid - g;
        miss += (-2.0 * d * d * theta as f64).exp();
    }
    (closed * (1.0 - miss)).max(0.0)
}

/// Smallest θ for which [`top_k_return_bound`] reaches `1 − delta`
/// (doubling + binary search; `None` if `10^8` samples do not suffice, e.g.
/// when τ_k = τ_{k+1} makes the sets statistically indistinguishable).
pub fn theta_for_confidence(
    top_taus: &[f64],
    tau_k1: f64,
    other_taus: &[f64],
    delta: f64,
) -> Option<usize> {
    assert!(delta > 0.0 && delta < 1.0);
    let target = 1.0 - delta;
    let ok = |theta: usize| top_k_return_bound(top_taus, tau_k1, other_taus, theta) >= target;
    let mut hi = 1usize;
    while !ok(hi) {
        hi *= 2;
        if hi > 100_000_000 {
            return None;
        }
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_bound_monotone_in_theta() {
        let taus = [0.4, 0.3, 0.1];
        let b10 = candidate_inclusion_bound(&taus, 10);
        let b100 = candidate_inclusion_bound(&taus, 100);
        assert!(b100 > b10);
        assert!(b100 <= 1.0);
        // With tau near 0 the bound collapses.
        assert!(candidate_inclusion_bound(&[1e-9], 10) < 1e-6);
    }

    #[test]
    fn inclusion_bound_exact_value() {
        // Single set, tau = 0.5, theta = 3: 1 - 0.5^3 = 0.875.
        let b = candidate_inclusion_bound(&[0.5], 3);
        assert!((b - 0.875).abs() < 1e-12);
    }

    #[test]
    fn return_bound_improves_with_gap() {
        // Well-separated taus give a better bound than close ones.
        let wide = top_k_return_bound(&[0.5, 0.4], 0.1, &[0.05], 500);
        let tight = top_k_return_bound(&[0.5, 0.4], 0.39, &[0.385], 500);
        assert!(wide > tight);
        assert!(wide > 0.99, "wide bound {wide}");
    }

    #[test]
    fn return_bound_within_unit_interval() {
        for theta in [1, 10, 100, 10_000] {
            let b = top_k_return_bound(&[0.3, 0.2], 0.1, &[0.05, 0.02], theta);
            assert!((0.0..=1.0).contains(&b), "theta {theta}: {b}");
        }
    }

    #[test]
    fn theta_search_finds_minimal() {
        let taus = [0.5, 0.4];
        let theta = theta_for_confidence(&taus, 0.1, &[0.05], 0.05).unwrap();
        assert!(top_k_return_bound(&taus, 0.1, &[0.05], theta) >= 0.95);
        if theta > 1 {
            assert!(top_k_return_bound(&taus, 0.1, &[0.05], theta - 1) < 0.95);
        }
    }

    #[test]
    fn theta_search_fails_on_ties() {
        // tau_k == tau_{k+1}: mid = tau_k, d = 0, Hoeffding term never < 1.
        assert_eq!(theta_for_confidence(&[0.4], 0.4, &[], 0.05), None);
    }

    #[test]
    fn closedness_and_nds_bounds() {
        let worlds = [0.2, 0.15, 0.1];
        let b = closedness_bound(&worlds, 50);
        assert!(b > 0.99);
        let nds = nds_return_bound(&worlds, &[0.6, 0.5], 0.2, &[0.1], 400);
        assert!(nds > 0.95, "nds bound {nds}");
        assert!(nds <= 1.0);
    }

    #[test]
    fn empirical_check_of_theorem2() {
        // Simulate candidate inclusion for a single set with tau = 0.3 and
        // verify the bound is conservative.
        let tau = 0.3f64;
        let theta = 10usize;
        let bound = candidate_inclusion_bound(&[tau], theta);
        // Exact inclusion probability = 1 - (1-tau)^theta, which the bound
        // equals for k = 1 (union bound is tight for one set).
        let exact = 1.0 - (1.0 - tau).powi(theta as i32);
        assert!((bound - exact).abs() < 1e-12);
    }
}
