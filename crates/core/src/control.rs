//! Cooperative run control for the sampling estimators: deadlines and
//! cancellation flags checked between sampled worlds.
//!
//! The estimators of [`crate::estimate`] and [`crate::nds`] are long,
//! seed-deterministic loops (θ worlds, each a full densest-subgraph solve).
//! A serving layer needs two things a batch run does not: the ability to
//! abandon a query whose client gave up (deadline) and the ability to drain
//! in-flight work on shutdown (cancellation flag). Both are *cooperative*:
//! the loop polls [`RunControl::interruption`] once per sampled world — a
//! per-world `Instant::now()` plus one relaxed atomic load, negligible next
//! to a world's densest-subgraph solve — and returns [`Interrupted`] instead
//! of a partial (and therefore biased-looking) estimate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why an estimator run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The [`RunControl`] deadline passed.
    DeadlineExceeded,
    /// The [`RunControl`] cancellation flag was raised.
    Cancelled,
}

/// Error returned when a controlled estimator run stops before sampling all
/// θ worlds. No partial estimate is returned: a truncated sample would have
/// a different (smaller) θ than requested, and callers that want partial
/// results should request fewer worlds instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Why the run stopped.
    pub reason: InterruptReason,
    /// Worlds fully processed before the stop (out of the requested θ).
    pub completed_worlds: usize,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.reason {
            InterruptReason::DeadlineExceeded => "deadline exceeded",
            InterruptReason::Cancelled => "cancelled",
        };
        write!(f, "{what} after {} sampled worlds", self.completed_worlds)
    }
}

impl std::error::Error for Interrupted {}

/// Deadline + cancellation-flag pair polled by the controlled estimators.
///
/// The default [`RunControl::unbounded`] never interrupts, so an
/// uncontrolled [`crate::api::Query`] run is exactly a controlled one with
/// an unbounded control.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl RunControl {
    /// A control that never interrupts.
    pub fn unbounded() -> Self {
        RunControl::default()
    }

    /// Interrupt the run once `deadline` has passed.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Interrupt the run once `flag` reads `true` (shared with the party
    /// that may raise it, e.g. a server's shutdown path).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Polls the control. `None` means keep going. Cancellation is checked
    /// before the deadline so a shutdown is reported as such even when the
    /// deadline has also passed.
    pub fn interruption(&self) -> Option<InterruptReason> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(InterruptReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(InterruptReason::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_never_interrupts() {
        assert_eq!(RunControl::unbounded().interruption(), None);
    }

    #[test]
    fn deadline_in_the_past_interrupts() {
        let ctrl = RunControl::unbounded().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(ctrl.interruption(), Some(InterruptReason::DeadlineExceeded));
        let far = RunControl::unbounded().with_deadline(Instant::now() + Duration::from_secs(600));
        assert_eq!(far.interruption(), None);
    }

    #[test]
    fn cancel_flag_interrupts_and_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctrl = RunControl::unbounded()
            .with_cancel_flag(Arc::clone(&flag))
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(ctrl.interruption(), Some(InterruptReason::DeadlineExceeded));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(ctrl.interruption(), Some(InterruptReason::Cancelled));
    }
}
