//! Cooperative run control for the sampling estimators: deadlines and
//! cancellation flags checked between sampled worlds.
//!
//! The estimators of [`crate::estimate`] and [`crate::nds`] are long,
//! seed-deterministic loops (θ worlds, each a full densest-subgraph solve).
//! A serving layer needs two things a batch run does not: the ability to
//! abandon a query whose client gave up (deadline) and the ability to drain
//! in-flight work on shutdown (cancellation flag). Both are *cooperative*:
//! the loop polls [`RunControl::interruption`] once per sampled world — a
//! per-world `Instant::now()` plus one relaxed atomic load, negligible next
//! to a world's densest-subgraph solve — and returns [`Interrupted`] instead
//! of a partial (and therefore biased-looking) estimate.
//!
//! Deadlines come in two flavors. [`RunControl::with_deadline`] is the hard,
//! *abortive* one above: the run returns [`Interrupted`] and no estimate.
//! [`RunControl::with_budget`] is the graceful, *anytime* one: once the
//! budget instant passes, the sampling loop finishes the current world and
//! returns the best-so-far estimate over the worlds actually sampled (the
//! divisor shrinks with it, so the estimate stays unbiased for the achieved
//! world count) with [`crate::api::StopReason::Budget`] in its stats. A run
//! with both stops at whichever fires first — cancellation, then hard
//! deadline, then budget.

use mpds_obs::Recorder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why an estimator run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The [`RunControl`] deadline passed.
    DeadlineExceeded,
    /// The [`RunControl`] cancellation flag was raised.
    Cancelled,
}

/// Error returned when a controlled estimator run stops before sampling all
/// θ worlds. No partial estimate is returned: a truncated sample would have
/// a different (smaller) θ than requested, and callers that want partial
/// results should request fewer worlds instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// Why the run stopped.
    pub reason: InterruptReason,
    /// Worlds fully processed before the stop (out of the requested θ).
    pub completed_worlds: usize,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.reason {
            InterruptReason::DeadlineExceeded => "deadline exceeded",
            InterruptReason::Cancelled => "cancelled",
        };
        write!(f, "{what} after {} sampled worlds", self.completed_worlds)
    }
}

impl std::error::Error for Interrupted {}

/// Deadline + cancellation-flag pair polled by the controlled estimators.
///
/// The default [`RunControl::unbounded`] never interrupts, so an
/// uncontrolled [`crate::api::Query`] run is exactly a controlled one with
/// an unbounded control.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    budget: Option<Instant>,
    recorder: Option<Arc<Recorder>>,
}

impl RunControl {
    /// A control that never interrupts.
    pub fn unbounded() -> Self {
        RunControl::default()
    }

    /// Interrupt the run once `deadline` has passed.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Interrupt the run once `flag` reads `true` (shared with the party
    /// that may raise it, e.g. a server's shutdown path).
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Stop the run *gracefully* once `budget` has passed: instead of
    /// aborting with [`Interrupted`], the sampling loop returns the
    /// best-so-far estimate over the worlds sampled up to that point. At
    /// least one world is always sampled, even when the budget is already
    /// in the past, so the estimate is never empty.
    pub fn with_budget(mut self, budget: Instant) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attach a stage-timing [`Recorder`]: the sampling loop wraps world
    /// materialization, estimator accumulation, and stability tracking in
    /// [`mpds_obs::Span`]s against it. A *disabled* recorder (or none at
    /// all) keeps the loop on its fast path — no clock reads per world.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached stage recorder, if any.
    #[inline]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// `true` once the graceful budget (if any) has passed. Unlike
    /// [`RunControl::interruption`] this never aborts a run; the sampling
    /// loop reads it between worlds and wraps up with whatever it has.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.is_some_and(|b| Instant::now() >= b)
    }

    /// Polls the control. `None` means keep going. Cancellation is checked
    /// before the deadline so a shutdown is reported as such even when the
    /// deadline has also passed.
    pub fn interruption(&self) -> Option<InterruptReason> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(InterruptReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(InterruptReason::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_never_interrupts() {
        assert_eq!(RunControl::unbounded().interruption(), None);
    }

    #[test]
    fn deadline_in_the_past_interrupts() {
        let ctrl = RunControl::unbounded().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(ctrl.interruption(), Some(InterruptReason::DeadlineExceeded));
        let far = RunControl::unbounded().with_deadline(Instant::now() + Duration::from_secs(600));
        assert_eq!(far.interruption(), None);
    }

    #[test]
    fn budget_is_graceful_not_an_interruption() {
        let ctrl = RunControl::unbounded().with_budget(Instant::now() - Duration::from_secs(1));
        assert!(ctrl.budget_exhausted());
        assert_eq!(ctrl.interruption(), None);
        let far = RunControl::unbounded().with_budget(Instant::now() + Duration::from_secs(600));
        assert!(!far.budget_exhausted());
        assert!(!RunControl::unbounded().budget_exhausted());
    }

    #[test]
    fn cancel_flag_interrupts_and_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctrl = RunControl::unbounded()
            .with_cancel_flag(Arc::clone(&flag))
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(ctrl.interruption(), Some(InterruptReason::DeadlineExceeded));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(ctrl.interruption(), Some(InterruptReason::Cancelled));
    }
}
