//! The paper's two case studies, packaged as reusable drivers so both the
//! examples and the experiment binaries can run them.
//!
//! * §VI-E (Figs. 6–7, Table X): Karate-Club communities — MPDS vs EDS,
//!   innermost η-core, innermost γ-truss, and the deterministic densest
//!   subgraph, scored by ground-truth purity.
//! * §VI-F (Figs. 8–15): brain networks — 3-clique MPDS on simulated TD and
//!   ASD group graphs, measured by lobes spanned and hemispheric symmetry.

use crate::api::Query;
use crate::baselines::{dds, eds, ucore, utruss};
use densest::DensityNotion;
use ugraph::brain::{Atlas, Cohort, Lobe};
use ugraph::{datasets, metrics, NodeSet};

/// One compared method's subgraph with its quality metrics.
#[derive(Debug, Clone)]
pub struct ScoredSubgraph {
    /// Label of the producing method (e.g. `"MPDS"`, `"EDS"`).
    pub method: &'static str,
    /// The subgraph's node set.
    pub node_set: NodeSet,
    /// Ground-truth purity (only when communities are known).
    pub purity: Option<f64>,
    /// Probabilistic density (paper Eq. 19).
    pub pd: f64,
    /// Probabilistic clustering coefficient (paper Eq. 20).
    pub pcc: f64,
}

/// Output of the Karate case study.
#[derive(Debug, Clone)]
pub struct KarateCaseStudy {
    /// Top-k MPDSs with estimated τ̂.
    pub mpds_top_k: Vec<(NodeSet, f64)>,
    /// All methods scored (MPDS = the top-1 set).
    pub scored: Vec<ScoredSubgraph>,
    /// Average purity of the top-k MPDSs (Table X row).
    pub mpds_avg_purity: f64,
}

/// Runs the §VI-E study on the embedded Karate Club dataset.
pub fn karate_case_study(theta: usize, k: usize, seed: u64) -> KarateCaseStudy {
    let data = datasets::karate_club();
    let g = &data.graph;
    let comms = data.communities.as_ref().expect("karate has ground truth");

    let mpds = Query::mpds(DensityNotion::Edge)
        .theta(theta)
        .k(k)
        .seed(seed)
        .run(g)
        .expect("valid case-study parameters");

    let score = |method: &'static str, set: NodeSet| ScoredSubgraph {
        method,
        purity: Some(metrics::purity(&set, comms)),
        pd: metrics::probabilistic_density(g, &set),
        pcc: metrics::probabilistic_clustering_coefficient(g, &set),
        node_set: set,
    };

    let mut scored = Vec::new();
    if let Some((top_set, _)) = mpds.top_k.first() {
        scored.push(score("MPDS", top_set.clone()));
    }
    if let Some(e) = eds::expected_densest_subgraph(g, &DensityNotion::Edge) {
        scored.push(score("EDS", e.node_set));
    }
    scored.push(score("Core", ucore::innermost_eta_core(g, 0.1)));
    scored.push(score("Truss", utruss::innermost_gamma_truss(g, 0.1)));
    if let Some((_, set)) = dds::deterministic_densest(g, &DensityNotion::Edge) {
        scored.push(score("DDS", set));
    }

    let mpds_sets: Vec<NodeSet> = mpds.top_k.iter().map(|(s, _)| s.clone()).collect();
    let mpds_avg_purity = metrics::average_purity(&mpds_sets, comms);
    KarateCaseStudy {
        mpds_top_k: mpds.top_k,
        scored,
        mpds_avg_purity,
    }
}

/// A method's subgraph measured against the brain atlas.
#[derive(Debug, Clone)]
pub struct BrainSubgraph {
    /// Label of the producing method (e.g. `"MPDS"`, `"EDS"`).
    pub method: &'static str,
    /// The subgraph's node set (atlas `NodeId`s).
    pub node_set: NodeSet,
    /// Atlas names of the member ROIs.
    pub roi_names: Vec<String>,
    /// Lobe of each member ROI, parallel to `roi_names`.
    pub lobes: Vec<Lobe>,
    /// Nodes without their mirror ROI in the set (lower = more symmetric;
    /// the paper counts 1 for ASD vs 3 for TD).
    pub unpaired: usize,
    /// Fraction of member ROIs whose mirror is also in the set.
    pub symmetry: f64,
}

/// Output of the brain case study for one cohort.
#[derive(Debug, Clone)]
pub struct BrainCaseStudy {
    /// Which simulated cohort was analysed.
    pub cohort: Cohort,
    /// One entry per compared method.
    pub subgraphs: Vec<BrainSubgraph>,
}

/// Runs the §VI-F study (3-clique density, as in the paper's Figs. 8–11) on
/// the simulated cohort graph.
pub fn brain_case_study(cohort: Cohort, theta: usize, seed: u64) -> BrainCaseStudy {
    let atlas = Atlas::aal116();
    let g = ugraph::brain::simulate_group_graph(&atlas, cohort, seed);
    let notion = DensityNotion::Clique(3);

    let measure = |method: &'static str, set: NodeSet| BrainSubgraph {
        method,
        roi_names: set
            .iter()
            .map(|&v| atlas.rois[v as usize].name.clone())
            .collect(),
        lobes: atlas.lobes_spanned(&set),
        unpaired: atlas.unpaired_count(&set),
        symmetry: atlas.symmetry(&set),
        node_set: set,
    };

    let mut subgraphs = Vec::new();
    let mpds = Query::mpds(notion.clone())
        .theta(theta)
        .k(1)
        .seed(seed ^ 0xb12a)
        .run(&g)
        .expect("valid case-study parameters");
    if let Some((set, _)) = mpds.top_k.first() {
        subgraphs.push(measure("MPDS", set.clone()));
    }
    if let Some(e) = eds::expected_densest_subgraph(&g, &notion) {
        subgraphs.push(measure("EDS", e.node_set));
    }
    subgraphs.push(measure("Core", ucore::innermost_eta_core(&g, 0.1)));
    subgraphs.push(measure("Truss", utruss::innermost_gamma_truss(&g, 0.1)));

    BrainCaseStudy { cohort, subgraphs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karate_mpds_has_perfect_purity() {
        // Paper Table X: MPDS purity = 1 for all k up to 10.
        let study = karate_case_study(400, 5, 7);
        assert!(!study.mpds_top_k.is_empty());
        assert!(
            study.mpds_avg_purity >= 0.99,
            "avg purity {}",
            study.mpds_avg_purity
        );
        let mpds = study.scored.iter().find(|s| s.method == "MPDS").unwrap();
        assert_eq!(mpds.purity, Some(1.0));
    }

    #[test]
    fn karate_mpds_beats_baselines_on_pcc() {
        // Paper Table VI: MPDS has the highest probabilistic clustering
        // coefficient on Karate Club.
        let study = karate_case_study(400, 1, 11);
        let pcc_of = |m: &str| {
            study
                .scored
                .iter()
                .find(|s| s.method == m)
                .map(|s| s.pcc)
                .unwrap_or(0.0)
        };
        let mpds = pcc_of("MPDS");
        for other in ["EDS", "Core", "DDS"] {
            assert!(
                mpds >= pcc_of(other),
                "MPDS pcc {mpds} < {other} pcc {}",
                pcc_of(other)
            );
        }
    }

    #[test]
    fn brain_asd_is_occipital_and_symmetric() {
        // Paper Figs. 8–9: ASD MPDS confined to the occipital lobe, with one
        // unpaired node; TD MPDS spans more lobes with more unpaired nodes.
        let asd = brain_case_study(Cohort::Asd, 120, 5);
        let td = brain_case_study(Cohort::TypicallyDeveloped, 120, 5);
        let asd_mpds = asd.subgraphs.iter().find(|s| s.method == "MPDS").unwrap();
        let td_mpds = td.subgraphs.iter().find(|s| s.method == "MPDS").unwrap();
        assert_eq!(asd_mpds.lobes, vec![Lobe::Occipital], "{asd_mpds:?}");
        assert!(td_mpds.lobes.len() >= 2, "{td_mpds:?}");
        assert!(asd_mpds.unpaired <= td_mpds.unpaired);
        assert!(asd_mpds.symmetry >= td_mpds.symmetry);
    }

    #[test]
    fn brain_core_baseline_cannot_distinguish_cohorts() {
        // Paper Figs. 12-13: the innermost eta-core spans multiple brain
        // regions and is the SAME in both cohorts (the shared hub structure),
        // so it carries no diagnostic signal — unlike the MPDS.
        let asd = brain_case_study(Cohort::Asd, 60, 5);
        let td = brain_case_study(Cohort::TypicallyDeveloped, 60, 5);
        let asd_core = asd.subgraphs.iter().find(|s| s.method == "Core").unwrap();
        let td_core = td.subgraphs.iter().find(|s| s.method == "Core").unwrap();
        assert_eq!(asd_core.node_set, td_core.node_set);
        assert!(asd_core.lobes.len() >= 3, "{:?}", asd_core.lobes);
    }
}
