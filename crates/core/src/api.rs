//! One typed entry point for every estimator, sampler, and execution mode.
//!
//! The paper's experimental surface is a single parameter space — density
//! notion ρ, sample count θ, result count k, minimum nucleus size `l_m`,
//! sampling strategy, heuristic mode, seed, parallelism — but the historical
//! entry points exposed it as six free functions that every consumer wired
//! up by hand. [`Query`] collapses them: build a query once, validate once,
//! and run any combination through one code path.
//!
//! | Builder knob | Paper symbol / section |
//! |---|---|
//! | [`Query::mpds`] / [`Query::nds`] | Algorithm 1 (τ) / Algorithm 5 (γ) |
//! | constructor argument | density notion ρ: edge, h-clique, pattern ψ (§II) |
//! | [`Query::theta`] (alias [`Query::worlds`]) | θ, the number of sampled possible worlds |
//! | [`Query::k`] | k, how many top node sets to return |
//! | [`Query::min_size`] | `l_m` (a.k.a. Λ), minimum nucleus size (§IV) |
//! | [`Query::sampler`] | MC / LP / RSS sampling strategies (§V, §VI-G) |
//! | [`Query::seed`] | the run's RNG seed — equal seeds mean equal results |
//! | [`Query::heuristic`] | the core-based heuristic of §III-C |
//! | [`Query::all_densest`] | the "all vs one densest per world" ablation (§VI-D) |
//! | [`Query::exec`] | serial, or θ split across worker threads |
//! | [`Query::stop`] | termination policy: fixed θ, or the §VI-I "sample until the top-k stops changing" rule ([`Stop::Stable`]) |
//! | [`Query::control`] | cooperative deadline / cancellation / graceful time budget ([`crate::control`]) |
//! | [`Query::progress`] | per-world progress callback ([`ProgressSink`]) |
//!
//! # Example
//!
//! The paper's running example (Fig. 1): `{B, D}` is the most probable
//! densest subgraph with τ ≈ 0.42.
//!
//! ```
//! use densest::DensityNotion;
//! use mpds::api::Query;
//! use ugraph::UncertainGraph;
//!
//! // A = 0, B = 1, C = 2, D = 3.
//! let g = UncertainGraph::from_weighted_edges(
//!     4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)]);
//! let run = Query::mpds(DensityNotion::Edge)
//!     .theta(2000)
//!     .k(1)
//!     .seed(42)
//!     .run(&g)
//!     .expect("valid query");
//! assert_eq!(run.top_k[0].0, vec![1, 3]); // {B, D}
//! assert!((run.top_k[0].1 - 0.42).abs() < 0.04);
//! ```
//!
//! # Determinism contract
//!
//! * `Exec::Serial` with sampler kind `K` and seed `s` draws exactly the
//!   worlds of `K` seeded with `s` — bit-identical to
//!   [`Query::run_with_sampler`] over `K::new(g, StdRng::seed_from_u64(s))`.
//! * `Exec::Threads(n)` gives worker `w` sub-stream `w` of the root seed
//!   ([`sampling::stream_seed`]), partial results merged in worker order. A
//!   serial run and a 1-thread run therefore draw *different* (both
//!   deterministic) world streams.
//!
//! Because the world stream depends only on `(sampler kind, seed)` — never
//! on the estimator — many queries can share one stream: see
//! [`queryset::QuerySet`] for batch evaluation that materializes each world
//! once while staying bit-identical to standalone runs.

pub mod queryset;

use crate::control::{Interrupted, RunControl};
use crate::estimate::{densest_count_stats, select_top_k, top_k_sets, MpdsResult};
use crate::nds::NdsResult;
use densest::{
    all_densest, heuristic::heuristic_dense_subgraphs, max_sized_densest, DensityNotion,
};
use mpds_obs::Stage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampling::{stream_seed, LazyPropagation, MonteCarlo, RecursiveStratified, WorldSampler};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ugraph::{EdgeMask, Graph, NodeId, NodeSet, UncertainGraph};

/// Which possible-world sampling strategy a [`Query`] uses (paper §V and the
/// §VI-G comparison).
///
/// ```
/// use mpds::api::SamplerKind;
/// assert_ne!(SamplerKind::MonteCarlo, SamplerKind::Rss);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// Monte Carlo: one independent Bernoulli flip per edge per world — the
    /// paper's default, no auxiliary state.
    MonteCarlo,
    /// Lazy Propagation \[54\]: per-edge geometric skip counters.
    Lp,
    /// Recursive Stratified Sampling \[55\] with the paper's pivot arity
    /// `r = 3`.
    Rss,
}

impl SamplerKind {
    /// Builds the sampler seeded directly with `seed` — the serial-execution
    /// seeding (see the module-level determinism contract).
    ///
    /// ```
    /// use mpds::api::SamplerKind;
    /// use sampling::WorldSampler;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
    /// let mut s = SamplerKind::MonteCarlo.build(&g, 7);
    /// assert_eq!(s.num_edges(), 2);
    /// assert_eq!(s.next_mask().len(), 2);
    /// ```
    pub fn build(self, g: &UncertainGraph, seed: u64) -> Box<dyn WorldSampler> {
        match self {
            SamplerKind::MonteCarlo => Box::new(MonteCarlo::new(g, StdRng::seed_from_u64(seed))),
            SamplerKind::Lp => Box::new(LazyPropagation::new(g, StdRng::seed_from_u64(seed))),
            SamplerKind::Rss => {
                Box::new(RecursiveStratified::new(g, 3, StdRng::seed_from_u64(seed)))
            }
        }
    }

    /// Builds the sampler for sub-stream `stream` of `root_seed` — the
    /// per-worker seeding of `Exec::Threads` ([`sampling::stream_seed`]
    /// decorrelates every `(root, stream)` pair).
    ///
    /// ```
    /// use mpds::api::SamplerKind;
    /// use sampling::WorldSampler;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
    /// let a = SamplerKind::MonteCarlo.build_stream(&g, 1, 0).next_mask();
    /// let b = SamplerKind::MonteCarlo.build_stream(&g, 1, 0).next_mask();
    /// assert_eq!(a, b); // reproducible per (root, stream)
    /// ```
    pub fn build_stream(
        self,
        g: &UncertainGraph,
        root_seed: u64,
        stream: u64,
    ) -> Box<dyn WorldSampler> {
        self.build(g, stream_seed(root_seed, stream))
    }

    /// Human-readable strategy name (`"MC"`, `"LP"`, `"RSS"`).
    ///
    /// ```
    /// assert_eq!(mpds::api::SamplerKind::Lp.name(), "LP");
    /// ```
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::MonteCarlo => "MC",
            SamplerKind::Lp => "LP",
            SamplerKind::Rss => "RSS",
        }
    }
}

/// How a [`Query`] executes its θ world samples.
///
/// ```
/// use mpds::api::Exec;
/// assert_eq!(Exec::default(), Exec::Serial);
/// assert_ne!(Exec::Threads(4), Exec::Serial);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// One thread samples all θ worlds (the paper's setup).
    #[default]
    Serial,
    /// θ split across this many scoped worker threads, each drawing an
    /// independent sub-stream of the root seed. Deterministic for a fixed
    /// `(seed, thread count)` pair.
    Threads(usize),
}

/// When a [`Query`] stops sampling worlds (the paper's §VI-I: θ is picked
/// empirically by sampling until the returned top-k stops changing —
/// [`Stop::Stable`] folds that rule into the run itself).
///
/// ```
/// use mpds::api::Stop;
/// assert_eq!(Stop::default(), Stop::FixedTheta);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stop {
    /// Sample exactly θ worlds ([`Query::theta`]) — the historical behavior,
    /// bit-identical to every run before stop policies existed.
    #[default]
    FixedTheta,
    /// Early-stop once the current top-k node sets are unchanged for
    /// `window` consecutive worlds (compared with
    /// [`ugraph::nodeset::set_family_similarity`] == 1.0), after at least
    /// `min_theta` worlds; give up and finish at `theta_cap` worlds if the
    /// ranking never settles. [`Query::theta`] is ignored. Serial only: the
    /// rule watches one ordered world stream.
    Stable {
        /// Consecutive unchanged-top-k worlds required to stop.
        window: usize,
        /// Never stop before this many worlds (guards tiny-sample flukes).
        min_theta: usize,
        /// Hard ceiling on sampled worlds.
        theta_cap: usize,
    },
}

/// Why a run stopped sampling, carried in [`RunStats::stop_reason`].
///
/// ```
/// use mpds::api::StopReason;
/// assert_eq!(StopReason::Completed.as_str(), "completed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The full world limit was sampled (fixed θ, or a [`Stop::Stable`] run
    /// that hit `theta_cap` without settling).
    Completed,
    /// [`Stop::Stable`] fired: the top-k was unchanged for `window` worlds.
    Stable,
    /// The [`RunControl::with_budget`] time budget expired; the estimate
    /// covers the worlds sampled up to that point.
    Budget,
}

impl StopReason {
    /// Wire/display name — the same strings the serving layer emits.
    ///
    /// ```
    /// assert_eq!(mpds::api::StopReason::Budget.as_str(), "budget");
    /// ```
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::Stable => "stable",
            StopReason::Budget => "budget",
        }
    }
}

/// Observer polled once per sampled world, alongside [`RunControl`] — the
/// hook a serving layer uses for live progress and a harness for reporting,
/// without forking the sampling loop.
///
/// Implementations must be `Send + Sync`: under [`Exec::Threads`] all
/// workers share one sink.
///
/// ```
/// use mpds::api::ProgressSink;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// struct Count(AtomicUsize);
/// impl ProgressSink for Count {
///     fn world_done(&self) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
/// let c = Count(AtomicUsize::new(0));
/// c.world_done();
/// assert_eq!(c.0.load(Ordering::Relaxed), 1);
/// ```
pub trait ProgressSink: Send + Sync {
    /// Called once when a run starts, with its total world budget θ.
    fn begin(&self, total_worlds: usize) {
        let _ = total_worlds;
    }

    /// Called after each sampled world has been fully processed.
    fn world_done(&self);
}

/// The default [`ProgressSink`]: ignores every notification.
///
/// ```
/// use mpds::api::{NoProgress, ProgressSink};
/// NoProgress.begin(100);
/// NoProgress.world_done(); // no-op
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl ProgressSink for NoProgress {
    fn world_done(&self) {}
}

/// A ready-made atomic [`ProgressSink`]: counts requested and completed
/// worlds across every run it is attached to (so one shared counter can
/// report engine-wide totals).
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::{ProgressCounter, Query};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.9), (1, 2, 0.9)]);
/// let counter = ProgressCounter::new();
/// Query::mpds(DensityNotion::Edge)
///     .theta(50)
///     .progress(counter.clone())
///     .run(&g)
///     .unwrap();
/// assert_eq!(counter.done(), 50);
/// assert_eq!(counter.requested(), 50);
/// ```
#[derive(Debug, Default)]
pub struct ProgressCounter {
    requested: AtomicUsize,
    done: AtomicUsize,
}

impl ProgressCounter {
    /// Creates a counter behind an [`Arc`], ready for [`Query::progress`].
    ///
    /// ```
    /// let c = mpds::api::ProgressCounter::new();
    /// assert_eq!(c.done(), 0);
    /// ```
    pub fn new() -> Arc<Self> {
        Arc::new(ProgressCounter::default())
    }

    /// Total worlds requested by runs attached to this counter.
    ///
    /// ```
    /// use mpds::api::{ProgressCounter, ProgressSink};
    /// let c = ProgressCounter::new();
    /// c.begin(32);
    /// assert_eq!(c.requested(), 32);
    /// ```
    pub fn requested(&self) -> usize {
        self.requested.load(Ordering::Relaxed)
    }

    /// Total worlds fully processed so far.
    ///
    /// ```
    /// use mpds::api::{ProgressCounter, ProgressSink};
    /// let c = ProgressCounter::new();
    /// c.world_done();
    /// assert_eq!(c.done(), 1);
    /// ```
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

impl ProgressSink for ProgressCounter {
    fn begin(&self, total_worlds: usize) {
        self.requested.fetch_add(total_worlds, Ordering::Relaxed);
    }

    fn world_done(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }
}

/// Why a [`Query`] failed. Marked `#[non_exhaustive]`: new failure modes may
/// be added without a breaking change, so match with a wildcard arm.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::{ApiError, Query};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
/// let err = Query::mpds(DensityNotion::Edge).theta(0).run(&g).unwrap_err();
/// assert!(matches!(err, ApiError::InvalidParameter { param: "theta", .. }));
/// assert!(err.to_string().contains("theta"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApiError {
    /// A builder knob holds an out-of-range or contradictory value.
    InvalidParameter {
        /// The offending builder knob.
        param: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The requested combination is not supported (e.g. the one-densest
    /// ablation under `Exec::Threads`, whose tie-breaking RNG is a single
    /// serial stream).
    Unsupported {
        /// Human-readable description of the unsupported combination.
        message: String,
    },
    /// The run's [`RunControl`] deadline passed or its cancellation flag was
    /// raised before all θ worlds were sampled.
    Interrupted(Interrupted),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::InvalidParameter { param, message } => {
                write!(f, "invalid {param}: {message}")
            }
            ApiError::Unsupported { message } => write!(f, "unsupported: {message}"),
            ApiError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Interrupted(i) => Some(i),
            _ => None,
        }
    }
}

impl From<Interrupted> for ApiError {
    fn from(i: Interrupted) -> Self {
        ApiError::Interrupted(i)
    }
}

/// Which probability estimate a [`Run`]'s scores are.
///
/// ```
/// use mpds::api::Score;
/// assert_eq!(Score::TauHat.as_str(), "tau_hat");
/// assert_eq!(Score::GammaHat.as_str(), "gamma_hat");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Score {
    /// Estimated densest subgraph probability `τ̂` (Algorithm 1).
    TauHat,
    /// Estimated containment probability `γ̂` (Algorithm 5).
    GammaHat,
}

impl Score {
    /// Wire/display name — the same strings the serving layer emits.
    ///
    /// ```
    /// assert_eq!(mpds::api::Score::TauHat.as_str(), "tau_hat");
    /// ```
    pub fn as_str(self) -> &'static str {
        match self {
            Score::TauHat => "tau_hat",
            Score::GammaHat => "gamma_hat",
        }
    }
}

/// Per-run measurements shared by every estimator.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::Query;
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)]);
/// let run = Query::mpds(DensityNotion::Edge).theta(40).run(&g).unwrap();
/// assert_eq!(run.stats.worlds_sampled, 40);
/// assert_eq!(run.stats.empty_worlds, 0); // edge (0,1) is certain
/// assert!(!run.stats.truncated);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunStats {
    /// Worlds actually sampled — and the divisor of every score in the run.
    /// Equals the requested θ under [`Stop::FixedTheta`] with no budget;
    /// smaller when [`Stop::Stable`] fired or a
    /// [`RunControl::with_budget`] budget expired (see
    /// [`RunStats::stop_reason`]). Hard-deadline / cancelled runs still
    /// return [`ApiError::Interrupted`] instead of partial stats.
    pub worlds_sampled: usize,
    /// Why sampling stopped: the full limit, top-k stability, or an
    /// exhausted time budget.
    pub stop_reason: StopReason,
    /// For [`StopReason::Stable`]: the world count after which the top-k
    /// never changed again (`worlds_sampled - window`). `None` otherwise.
    pub converged_at: Option<usize>,
    /// Sampled worlds containing no instance of the density notion.
    pub empty_worlds: usize,
    /// Wall-clock time of the run (sampling + aggregation).
    pub wall: Duration,
    /// MPDS: some world's densest-subgraph enumeration hit the cap.
    /// NDS: the closed-itemset miner hit its node cap.
    pub truncated: bool,
    /// Convergence diagnostic — per-world densest-subgraph counts summarized
    /// as `(mean, std, [q1, median, q3])`, the paper's Table VIII statistic.
    /// `None` for NDS runs (they keep one transaction per world instead).
    pub densest_count_summary: Option<(f64, f64, [usize; 3])>,
}

/// Estimator-specific raw output carried inside a [`Run`].
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::{Query, RunDetails};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.8), (1, 2, 0.8)]);
/// let run = Query::nds(DensityNotion::Edge).theta(30).run(&g).unwrap();
/// match &run.details {
///     RunDetails::Nds(r) => assert_eq!(r.theta, 30),
///     RunDetails::Mpds(_) => unreachable!("built with Query::nds"),
/// }
/// ```
#[derive(Debug, Clone)]
pub enum RunDetails {
    /// Full Algorithm 1 output (candidate table, per-world counts).
    Mpds(MpdsResult),
    /// Full Algorithm 5 output (transaction multiset, miner state).
    Nds(NdsResult),
}

/// The unified result of a [`Query`]: ranked patterns with scores, plus
/// per-run statistics and the estimator-specific details.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::{Query, Score};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.2)]);
/// let run = Query::mpds(DensityNotion::Edge).theta(100).k(2).run(&g).unwrap();
/// assert_eq!(run.score, Score::TauHat);
/// assert_eq!(run.top_k[0].0, vec![0, 1]); // the certain edge
/// assert!(run.stats.wall.as_nanos() > 0);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Run {
    /// Top-k node sets with their estimated probability (`τ̂` or `γ̂` per
    /// [`Run::score`]), sorted by score descending with deterministic
    /// tie-breaking (smaller set first, then lexicographic).
    pub top_k: Vec<(NodeSet, f64)>,
    /// Which estimate the scores are.
    pub score: Score,
    /// Per-run measurements.
    pub stats: RunStats,
    /// Estimator-specific raw output.
    pub details: RunDetails,
}

impl Run {
    /// Estimated score of an arbitrary node set: `τ̂(U)` for MPDS runs
    /// (frequency of inducing a densest subgraph), `γ̂(U)` for NDS runs
    /// (fraction of transactions containing `U`).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0)]);
    /// let run = Query::mpds(DensityNotion::Edge).theta(50).run(&g).unwrap();
    /// assert_eq!(run.score_of(&[0, 1]), 1.0);
    /// assert_eq!(run.score_of(&[1, 2]), 0.0);
    /// ```
    pub fn score_of(&self, nodes: &[NodeId]) -> f64 {
        match &self.details {
            RunDetails::Mpds(r) => r.tau_hat(nodes),
            RunDetails::Nds(r) => r.gamma_hat(nodes),
        }
    }
}

/// Which estimator a [`Query`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Mpds,
    Nds,
}

/// A fully-parameterized estimator invocation: the builder.
///
/// Start from [`Query::mpds`] or [`Query::nds`], chain the knobs you need
/// (defaults are the paper's), then [`Query::run`]. See the
/// [module docs](self) for the knob ↔ paper-symbol map.
///
/// ```
/// use densest::DensityNotion;
/// use mpds::api::{Exec, Query, SamplerKind};
/// use ugraph::UncertainGraph;
///
/// let g = UncertainGraph::from_weighted_edges(
///     4, &[(0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9), (2, 3, 0.2)]);
/// let run = Query::nds(DensityNotion::Edge)
///     .theta(64)
///     .k(3)
///     .min_size(2)
///     .sampler(SamplerKind::MonteCarlo)
///     .seed(7)
///     .exec(Exec::Threads(2))
///     .run(&g)
///     .expect("valid query");
/// assert!(run.top_k.len() <= 3);
/// ```
#[derive(Clone)]
pub struct Query {
    kind: Kind,
    notion: DensityNotion,
    theta: usize,
    k: usize,
    min_size: usize,
    sampler: SamplerKind,
    seed: u64,
    heuristic: bool,
    all_densest: bool,
    enumeration_cap: usize,
    choice_seed: u64,
    miner_node_cap: usize,
    exec: Exec,
    stop: Stop,
    control: RunControl,
    progress: Option<Arc<dyn ProgressSink>>,
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("kind", &self.kind)
            .field("notion", &self.notion)
            .field("theta", &self.theta)
            .field("k", &self.k)
            .field("min_size", &self.min_size)
            .field("sampler", &self.sampler)
            .field("seed", &self.seed)
            .field("heuristic", &self.heuristic)
            .field("all_densest", &self.all_densest)
            .field("enumeration_cap", &self.enumeration_cap)
            .field("choice_seed", &self.choice_seed)
            .field("miner_node_cap", &self.miner_node_cap)
            .field("exec", &self.exec)
            .field("stop", &self.stop)
            .field("control", &self.control)
            .field("progress", &self.progress.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl Query {
    fn new(kind: Kind, notion: DensityNotion) -> Self {
        Query {
            kind,
            notion,
            theta: 320,
            k: 5,
            min_size: 2,
            sampler: SamplerKind::MonteCarlo,
            seed: 42,
            heuristic: false,
            all_densest: true,
            enumeration_cap: 100_000,
            choice_seed: 0x5eed,
            miner_node_cap: 5_000_000,
            exec: Exec::Serial,
            stop: Stop::FixedTheta,
            control: RunControl::unbounded(),
            progress: None,
        }
    }

    /// A top-k **MPDS** query (Algorithm 1): rank node sets by estimated
    /// densest subgraph probability `τ̂` under density notion ρ.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Clique(3)).theta(100).k(2);
    /// assert!(format!("{q:?}").contains("Mpds"));
    /// ```
    pub fn mpds(notion: DensityNotion) -> Self {
        Query::new(Kind::Mpds, notion)
    }

    /// A top-k **NDS** query (Algorithm 5): rank closed node sets of size ≥
    /// `l_m` by estimated containment probability `γ̂`.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::nds(DensityNotion::Edge).min_size(4);
    /// assert!(format!("{q:?}").contains("Nds"));
    /// ```
    pub fn nds(notion: DensityNotion) -> Self {
        Query::new(Kind::Nds, notion)
    }

    /// Sets θ, the number of sampled possible worlds (default 320).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).theta(640);
    /// assert!(format!("{q:?}").contains("theta: 640"));
    /// ```
    pub fn theta(mut self, theta: usize) -> Self {
        self.theta = theta;
        self
    }

    /// Alias of [`Query::theta`] for readers who think in "#worlds".
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).worlds(64);
    /// assert!(format!("{q:?}").contains("theta: 64"));
    /// ```
    pub fn worlds(self, worlds: usize) -> Self {
        self.theta(worlds)
    }

    /// Sets k, how many top node sets to return (default 5; `k = 0` is the
    /// degenerate "rank nothing" query and yields an empty `top_k`, exactly
    /// as the legacy entry points did).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).k(10);
    /// assert!(format!("{q:?}").contains("k: 10"));
    /// ```
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets `l_m`, the minimum size of a returned nucleus (default 2;
    /// `0` imposes no size floor, exactly as the legacy entry point did).
    /// NDS only; MPDS queries ignore it, exactly as Algorithm 1 does.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::nds(DensityNotion::Edge).min_size(4);
    /// assert!(format!("{q:?}").contains("min_size: 4"));
    /// ```
    pub fn min_size(mut self, min_size: usize) -> Self {
        self.min_size = min_size;
        self
    }

    /// Chooses the sampling strategy (default [`SamplerKind::MonteCarlo`]).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::{Query, SamplerKind};
    /// let q = Query::mpds(DensityNotion::Edge).sampler(SamplerKind::Rss);
    /// assert!(format!("{q:?}").contains("Rss"));
    /// ```
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the run's RNG seed (default 42). Equal seeds ⇒ equal worlds ⇒
    /// equal results, per execution mode (see the module docs).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).seed(7);
    /// assert!(format!("{q:?}").contains("seed: 7"));
    /// ```
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured RNG seed (read-only counterpart of [`Query::seed`] —
    /// used by [`crate::recompute`] to build common-random-number samplers
    /// that share the query's seed).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// assert_eq!(Query::mpds(DensityNotion::Edge).seed(9).seed_value(), 9);
    /// ```
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Uses the §III-C heuristic (innermost core + denser peeling suffixes)
    /// per world instead of the exact enumeration (default `false`).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).heuristic(true);
    /// assert!(format!("{q:?}").contains("heuristic: true"));
    /// ```
    pub fn heuristic(mut self, heuristic: bool) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// MPDS only: `true` (default, the paper's method) counts **all**
    /// densest subgraphs per world; `false` counts one uniformly random one
    /// — the §VI-D ablation.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).all_densest(false);
    /// assert!(format!("{q:?}").contains("all_densest: false"));
    /// ```
    pub fn all_densest(mut self, all_densest: bool) -> Self {
        self.all_densest = all_densest;
        self
    }

    /// MPDS only: cap on densest subgraphs enumerated per world (default
    /// 100 000 — they can explode, paper Table VIII).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).enumeration_cap(1000);
    /// assert!(format!("{q:?}").contains("enumeration_cap: 1000"));
    /// ```
    pub fn enumeration_cap(mut self, cap: usize) -> Self {
        self.enumeration_cap = cap;
        self
    }

    /// MPDS only: seed of the tie-breaking RNG used by the
    /// `all_densest(false)` ablation (default `0x5eed`).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::mpds(DensityNotion::Edge).choice_seed(1);
    /// assert!(format!("{q:?}").contains("choice_seed: 1"));
    /// ```
    pub fn choice_seed(mut self, choice_seed: u64) -> Self {
        self.choice_seed = choice_seed;
        self
    }

    /// NDS only: cap on closed-itemset search nodes (default 5 000 000).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// let q = Query::nds(DensityNotion::Edge).miner_node_cap(200_000);
    /// assert!(format!("{q:?}").contains("miner_node_cap: 200000"));
    /// ```
    pub fn miner_node_cap(mut self, cap: usize) -> Self {
        self.miner_node_cap = cap;
        self
    }

    /// Chooses serial or multi-threaded execution (default
    /// [`Exec::Serial`]).
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::{Exec, Query};
    /// let q = Query::mpds(DensityNotion::Edge).exec(Exec::Threads(4));
    /// assert!(format!("{q:?}").contains("Threads(4)"));
    /// ```
    pub fn exec(mut self, exec: Exec) -> Self {
        self.exec = exec;
        self
    }

    /// Chooses the termination policy (default [`Stop::FixedTheta`]).
    /// [`Stop::Stable`] samples until the top-k ranking is unchanged for a
    /// window of consecutive worlds — the paper's §VI-I convergence rule,
    /// folded into the run. A run that stops at `t` worlds is bit-identical
    /// to a [`Stop::FixedTheta`] run with `theta(t)` and the same seed.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::{Query, Stop, StopReason};
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.2)]);
    /// let run = Query::mpds(DensityNotion::Edge)
    ///     .k(1)
    ///     .stop(Stop::Stable { window: 16, min_theta: 16, theta_cap: 4000 })
    ///     .run(&g)
    ///     .unwrap();
    /// assert_eq!(run.stats.stop_reason, StopReason::Stable);
    /// assert!(run.stats.worlds_sampled < 4000);
    /// ```
    pub fn stop(mut self, stop: Stop) -> Self {
        self.stop = stop;
        self
    }

    /// Attaches a cooperative deadline / cancellation control, polled once
    /// per sampled world (default: unbounded). [`RunControl::with_deadline`]
    /// aborts with [`ApiError::Interrupted`]; [`RunControl::with_budget`]
    /// instead finishes gracefully with the worlds sampled so far and
    /// [`StopReason::Budget`] in the stats.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::{ApiError, Query};
    /// use mpds::control::RunControl;
    /// use std::time::{Duration, Instant};
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let expired = RunControl::unbounded()
    ///     .with_deadline(Instant::now() - Duration::from_millis(1));
    /// let err = Query::mpds(DensityNotion::Edge).control(expired).run(&g);
    /// assert!(matches!(err, Err(ApiError::Interrupted(_))));
    /// ```
    pub fn control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Attaches a [`ProgressSink`], notified once per sampled world
    /// (default: none). Under [`Exec::Threads`] all workers share the sink.
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::{ProgressCounter, Query};
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let c = ProgressCounter::new();
    /// Query::mpds(DensityNotion::Edge).theta(10).progress(c.clone()).run(&g).unwrap();
    /// assert_eq!(c.done(), 10);
    /// ```
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Validates every knob once; the single checkpoint before execution.
    fn validate(&self) -> Result<(), ApiError> {
        let invalid = |param: &'static str, message: String| {
            Err(ApiError::InvalidParameter { param, message })
        };
        if self.theta == 0 {
            return invalid("theta", "need at least one sampled world".to_string());
        }
        if let Stop::Stable {
            window,
            min_theta,
            theta_cap,
        } = self.stop
        {
            if window == 0 {
                return invalid("stop", "Stable window must be at least 1".to_string());
            }
            if theta_cap == 0 {
                return invalid("stop", "Stable theta_cap must be at least 1".to_string());
            }
            if min_theta > theta_cap {
                return invalid(
                    "stop",
                    format!("Stable min_theta {min_theta} exceeds theta_cap {theta_cap}"),
                );
            }
            if let Exec::Threads(_) = self.exec {
                return Err(ApiError::Unsupported {
                    message: "Stop::Stable watches one ordered world stream; \
                              run it with Exec::Serial"
                        .to_string(),
                });
            }
        }
        if let Exec::Threads(workers) = self.exec {
            if workers == 0 {
                return invalid("exec", "Threads(0) has no workers".to_string());
            }
            if self.theta < workers {
                return invalid(
                    "exec",
                    format!("theta {} < {workers} worker threads", self.theta),
                );
            }
            if self.kind == Kind::Mpds && !self.all_densest {
                return Err(ApiError::Unsupported {
                    message: "the one-densest-per-world ablation draws from a single \
                              serial tie-breaking RNG stream; run it with Exec::Serial"
                        .to_string(),
                });
            }
        }
        Ok(())
    }

    /// Validates, resolves the execution plan, and runs the query, building
    /// the sampler internally from [`Query::sampler`] + [`Query::seed`].
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.3)]);
    /// let run = Query::mpds(DensityNotion::Edge).theta(64).k(1).run(&g).unwrap();
    /// assert_eq!(run.top_k[0].0, vec![0, 1]);
    /// ```
    pub fn run(&self, g: &UncertainGraph) -> Result<Run, ApiError> {
        self.validate()?;
        let started = Instant::now();
        match self.exec {
            Exec::Serial => {
                let mut sampler = self.sampler.build(g, self.seed);
                self.run_serial(g, &mut *sampler, started)
            }
            Exec::Threads(workers) => self.run_threads(g, workers, started),
        }
    }

    /// Runs the query with a caller-supplied sampler instead of resolving
    /// one from [`Query::sampler`] + [`Query::seed`]. Serial only: an
    /// external sampler is a single mutable stream, so [`Exec::Threads`]
    /// returns [`ApiError::Unsupported`].
    ///
    /// ```
    /// use densest::DensityNotion;
    /// use mpds::api::Query;
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use sampling::MonteCarlo;
    /// use ugraph::UncertainGraph;
    ///
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.3)]);
    /// let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
    /// let run = Query::mpds(DensityNotion::Edge)
    ///     .theta(64)
    ///     .run_with_sampler(&g, &mut mc)
    ///     .unwrap();
    /// assert_eq!(run.top_k[0].0, vec![0, 1]);
    /// ```
    pub fn run_with_sampler<S: WorldSampler + ?Sized>(
        &self,
        g: &UncertainGraph,
        sampler: &mut S,
    ) -> Result<Run, ApiError> {
        self.validate()?;
        if let Exec::Threads(_) = self.exec {
            return Err(ApiError::Unsupported {
                message: "an external sampler is a single mutable stream; \
                          Exec::Threads needs per-worker sub-streams (use Query::run)"
                    .to_string(),
            });
        }
        self.run_serial(g, sampler, Instant::now())
    }

    fn progress_sink(&self) -> &dyn ProgressSink {
        match &self.progress {
            Some(sink) => sink.as_ref(),
            None => &NoProgress,
        }
    }

    /// The sampling loop's iteration ceiling: θ under [`Stop::FixedTheta`],
    /// `theta_cap` under [`Stop::Stable`].
    fn world_limit(&self) -> usize {
        match self.stop {
            Stop::FixedTheta => self.theta,
            Stop::Stable { theta_cap, .. } => theta_cap,
        }
    }

    /// A fresh [`StableTracker`] when this query early-stops on stability.
    fn stable_tracker(&self) -> Option<StableTracker> {
        match self.stop {
            Stop::FixedTheta => None,
            Stop::Stable {
                window, min_theta, ..
            } => Some(StableTracker::new(window, min_theta)),
        }
    }

    /// Stamps `converged_at` once the outcome is known: a stable stop at
    /// `worlds` means the top-k last changed at `worlds - window`.
    fn note_convergence(&self, outcome: &mut WorldsOutcome) {
        if outcome.reason == StopReason::Stable {
            if let Stop::Stable { window, .. } = self.stop {
                outcome.converged_at = Some(outcome.worlds.saturating_sub(window));
            }
        }
    }

    fn run_serial<S: WorldSampler + ?Sized>(
        &self,
        g: &UncertainGraph,
        sampler: &mut S,
        started: Instant,
    ) -> Result<Run, ApiError> {
        let progress = self.progress_sink();
        let limit = self.world_limit();
        progress.begin(limit);
        let mut tracker = self.stable_tracker();
        // Stage recorder (if attached): a disabled recorder hands out inert
        // spans, so the un-profiled loop pays one branch per stage, no
        // clock reads.
        let rec = self.control.recorder();
        match self.kind {
            Kind::Mpds => {
                let mut acc = MpdsAccum::new(self);
                let mut outcome =
                    sample_worlds(g, sampler, limit, &self.control, progress, |world| {
                        {
                            let _span = rec.map(|r| r.span(Stage::EstimatorAccumulate));
                            acc.consume(world, self);
                        }
                        match &mut tracker {
                            None => true,
                            Some(t) => {
                                let _span = rec.map(|r| r.span(Stage::StableTracker));
                                !t.observe(top_k_sets(&acc.candidates, self.k))
                            }
                        }
                    })?;
                self.note_convergence(&mut outcome);
                Ok(self.finish_mpds(acc, outcome, started))
            }
            Kind::Nds => {
                let mut acc = NdsAccum::new(self);
                let mut outcome =
                    sample_worlds(g, sampler, limit, &self.control, progress, |world| {
                        {
                            let _span = rec.map(|r| r.span(Stage::EstimatorAccumulate));
                            acc.consume(world, self);
                        }
                        match &mut tracker {
                            None => true,
                            Some(t) => {
                                let _span = rec.map(|r| r.span(Stage::StableTracker));
                                let (mined, _) = itemset::top_k_closed(
                                    &acc.transactions,
                                    self.k,
                                    self.min_size,
                                    self.miner_node_cap,
                                );
                                let current: Vec<NodeSet> =
                                    mined.into_iter().map(|c| c.items).collect();
                                !t.observe(current)
                            }
                        }
                    })?;
                self.note_convergence(&mut outcome);
                Ok(self.finish_nds(acc, outcome, started))
            }
        }
    }

    fn run_threads(
        &self,
        g: &UncertainGraph,
        workers: usize,
        started: Instant,
    ) -> Result<Run, ApiError> {
        let progress = self.progress_sink();
        progress.begin(self.theta);
        match self.kind {
            Kind::Mpds => {
                let (acc, outcome) =
                    self.run_workers(g, workers, progress, MpdsAccum::new(self))?;
                Ok(self.finish_mpds(acc, outcome, started))
            }
            Kind::Nds => {
                let (acc, outcome) = self.run_workers(g, workers, progress, NdsAccum::new(self))?;
                Ok(self.finish_nds(acc, outcome, started))
            }
        }
    }

    /// Splits θ across `workers` scoped threads (worker `w` gets sub-stream
    /// `w` of the root seed and an even share of θ, the first `θ mod n`
    /// workers one extra), then merges the partial accumulators in worker
    /// order — so the merged state is position-for-position the state one
    /// worker would have produced from the concatenated streams.
    fn run_workers<A: Accum>(
        &self,
        g: &UncertainGraph,
        workers: usize,
        progress: &dyn ProgressSink,
        seed_acc: A,
    ) -> Result<(A, WorldsOutcome), ApiError> {
        let per = self.theta / workers;
        let extra = self.theta % workers;
        let results: Vec<(A, Result<WorldsOutcome, Interrupted>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let quota = per + usize::from(w < extra);
                    let mut acc = seed_acc.fresh();
                    scope.spawn(move || {
                        let rec = self.control.recorder();
                        let mut sampler = self.sampler.build_stream(g, self.seed, w as u64);
                        let outcome = sample_worlds(
                            g,
                            &mut *sampler,
                            quota,
                            &self.control,
                            progress,
                            |world| {
                                let _span = rec.map(|r| r.span(Stage::EstimatorAccumulate));
                                acc.consume(world, self);
                                true
                            },
                        );
                        (acc, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("estimator worker panicked"))
                .collect()
        });
        let completed: usize = results
            .iter()
            .map(|(_, r)| match r {
                Ok(o) => o.worlds,
                Err(i) => i.completed_worlds,
            })
            .sum();
        if let Some(reason) = results
            .iter()
            .find_map(|(_, r)| r.as_ref().err().map(|i| i.reason))
        {
            return Err(ApiError::Interrupted(Interrupted {
                reason,
                completed_worlds: completed,
            }));
        }
        // Workers stop gracefully at different counts when a shared budget
        // expires; the merged run is Budget if any worker was.
        let reason = if results
            .iter()
            .any(|(_, r)| matches!(r, Ok(o) if o.reason == StopReason::Budget))
        {
            StopReason::Budget
        } else {
            StopReason::Completed
        };
        let mut merged = seed_acc;
        for (partial, _) in results {
            merged.merge(partial);
        }
        Ok((
            merged,
            WorldsOutcome {
                worlds: completed,
                reason,
                converged_at: None,
            },
        ))
    }

    fn finish_mpds(&self, acc: MpdsAccum, outcome: WorldsOutcome, started: Instant) -> Run {
        // The divisor is the achieved world count, so an early-stopped run
        // is exactly the fixed-θ run at that θ (same stream prefix).
        let worlds = outcome.worlds;
        let top_k = select_top_k(&acc.candidates, self.k, worlds);
        let summary = if acc.densest_counts.is_empty() {
            None
        } else {
            Some(densest_count_stats(&acc.densest_counts))
        };
        let result = MpdsResult {
            top_k: top_k.clone(),
            candidates: acc.candidates,
            theta: worlds,
            empty_worlds: acc.empty_worlds,
            densest_counts: acc.densest_counts,
            truncated: acc.truncated,
        };
        Run {
            top_k,
            score: Score::TauHat,
            stats: RunStats {
                worlds_sampled: worlds,
                stop_reason: outcome.reason,
                converged_at: outcome.converged_at,
                empty_worlds: result.empty_worlds,
                wall: started.elapsed(),
                truncated: result.truncated,
                densest_count_summary: summary,
            },
            details: RunDetails::Mpds(result),
        }
    }

    fn finish_nds(&self, acc: NdsAccum, outcome: WorldsOutcome, started: Instant) -> Run {
        let worlds = outcome.worlds;
        let (mined, miner_capped) = itemset::top_k_closed(
            &acc.transactions,
            self.k,
            self.min_size,
            self.miner_node_cap,
        );
        let top_k: Vec<(NodeSet, f64)> = mined
            .into_iter()
            .map(|c| (c.items, c.support as f64 / worlds as f64))
            .collect();
        let result = NdsResult {
            top_k: top_k.clone(),
            transactions: acc.transactions,
            theta: worlds,
            empty_worlds: acc.empty_worlds,
            miner_capped,
        };
        Run {
            top_k,
            score: Score::GammaHat,
            stats: RunStats {
                worlds_sampled: worlds,
                stop_reason: outcome.reason,
                converged_at: outcome.converged_at,
                empty_worlds: result.empty_worlds,
                wall: started.elapsed(),
                truncated: miner_capped,
                densest_count_summary: None,
            },
            details: RunDetails::Nds(result),
        }
    }
}

/// How a [`sample_worlds`] loop ended: how many worlds it drew and why it
/// stopped. `converged_at` is stamped by the caller (only it knows the
/// stable window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WorldsOutcome {
    /// Worlds fully sampled and consumed.
    pub worlds: usize,
    /// Why the loop stopped.
    pub reason: StopReason,
    /// For stable stops: the world count after which the top-k was frozen.
    pub converged_at: Option<usize>,
}

/// THE sampling loop: every estimator, sampler, and execution mode runs
/// through this one function (serial runs call it once, `Exec::Threads`
/// workers once each). Per iteration: poll the [`RunControl`] (abortive
/// deadline / cancellation), check the graceful time budget, draw a world
/// into the recycled mask + CSR storage (zero steady-state allocation),
/// hand it to the accumulator, notify the [`ProgressSink`]. The
/// accumulator's `per_world` return steers early stopping: `false` ends the
/// loop with [`StopReason::Stable`]. An exhausted budget ends it with
/// [`StopReason::Budget`] — but never before the first world, so a budgeted
/// run always returns a (minimal) estimate.
pub(crate) fn sample_worlds<S: WorldSampler + ?Sized>(
    g: &UncertainGraph,
    sampler: &mut S,
    limit: usize,
    ctrl: &RunControl,
    progress: &dyn ProgressSink,
    mut per_world: impl FnMut(&Graph) -> bool,
) -> Result<WorldsOutcome, Interrupted> {
    let mut mask = EdgeMask::new(g.num_edges());
    let mut world = Graph::default();
    let rec = ctrl.recorder();
    for completed in 0..limit {
        if let Some(reason) = ctrl.interruption() {
            return Err(Interrupted {
                reason,
                completed_worlds: completed,
            });
        }
        if completed > 0 && ctrl.budget_exhausted() {
            return Ok(WorldsOutcome {
                worlds: completed,
                reason: StopReason::Budget,
                converged_at: None,
            });
        }
        {
            let _span = rec.map(|r| r.span(Stage::WorldMaterialize));
            sampler.next_mask_into(&mut mask);
            world = g.world_from_bitmap(&mask, world);
        }
        let keep_going = per_world(&world);
        progress.world_done();
        if !keep_going {
            return Ok(WorldsOutcome {
                worlds: completed + 1,
                reason: StopReason::Stable,
                converged_at: None,
            });
        }
    }
    Ok(WorldsOutcome {
        worlds: limit,
        reason: StopReason::Completed,
        converged_at: None,
    })
}

/// Watches the per-world top-k under [`Stop::Stable`]: counts how many
/// consecutive worlds left the ranking unchanged (family similarity 1.0)
/// and says stop once the streak reaches the window past `min_theta`.
struct StableTracker {
    window: usize,
    min_theta: usize,
    worlds: usize,
    streak: usize,
    prev: Option<Vec<NodeSet>>,
}

impl StableTracker {
    fn new(window: usize, min_theta: usize) -> Self {
        StableTracker {
            window,
            min_theta,
            worlds: 0,
            streak: 0,
            prev: None,
        }
    }

    /// Feeds the top-k after one more world; `true` means stop now.
    fn observe(&mut self, current: Vec<NodeSet>) -> bool {
        self.worlds += 1;
        match &self.prev {
            Some(prev) if ugraph::nodeset::set_family_similarity(prev, &current) >= 1.0 => {
                self.streak += 1;
            }
            _ => self.streak = 0,
        }
        self.prev = Some(current);
        self.worlds >= self.min_theta && self.streak >= self.window
    }
}

/// A per-worker partial result: consumes worlds, merges in worker order.
trait Accum: Send + Sized {
    /// An empty accumulator with the same configuration.
    fn fresh(&self) -> Self;
    /// Processes one sampled world.
    fn consume(&mut self, world: &Graph, q: &Query);
    /// Appends another worker's partial state (worker order!).
    fn merge(&mut self, other: Self);
}

struct MpdsAccum {
    candidates: HashMap<NodeSet, u32>,
    empty_worlds: usize,
    densest_counts: Vec<usize>,
    truncated: bool,
    choice_rng: StdRng,
}

impl MpdsAccum {
    fn new(q: &Query) -> Self {
        MpdsAccum {
            candidates: HashMap::new(),
            empty_worlds: 0,
            densest_counts: Vec::with_capacity(q.theta),
            truncated: false,
            choice_rng: StdRng::seed_from_u64(q.choice_seed),
        }
    }
}

impl Accum for MpdsAccum {
    fn fresh(&self) -> Self {
        MpdsAccum {
            candidates: HashMap::new(),
            empty_worlds: 0,
            densest_counts: Vec::new(),
            truncated: false,
            choice_rng: self.choice_rng.clone(),
        }
    }

    fn consume(&mut self, world: &Graph, q: &Query) {
        let subgraphs: Vec<NodeSet> = if q.heuristic {
            match heuristic_dense_subgraphs(world, &q.notion) {
                None => Vec::new(),
                Some(h) => h.subgraphs,
            }
        } else {
            match all_densest(world, &q.notion, q.enumeration_cap) {
                None => Vec::new(),
                Some(r) => {
                    self.truncated |= r.truncated;
                    r.subgraphs
                }
            }
        };
        if subgraphs.is_empty() {
            self.empty_worlds += 1;
            self.densest_counts.push(0);
            return;
        }
        self.densest_counts.push(subgraphs.len());
        if q.all_densest {
            for sg in subgraphs {
                *self.candidates.entry(sg).or_insert(0) += 1;
            }
        } else {
            // §VI-D ablation: one uniformly random densest subgraph.
            let pick = self.choice_rng.gen_range(0..subgraphs.len());
            *self.candidates.entry(subgraphs[pick].clone()).or_insert(0) += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        for (set, c) in other.candidates {
            *self.candidates.entry(set).or_insert(0) += c;
        }
        self.empty_worlds += other.empty_worlds;
        self.densest_counts.extend(other.densest_counts);
        self.truncated |= other.truncated;
    }
}

struct NdsAccum {
    transactions: Vec<NodeSet>,
    empty_worlds: usize,
}

impl NdsAccum {
    fn new(q: &Query) -> Self {
        NdsAccum {
            transactions: Vec::with_capacity(q.theta),
            empty_worlds: 0,
        }
    }
}

impl Accum for NdsAccum {
    fn fresh(&self) -> Self {
        NdsAccum {
            transactions: Vec::new(),
            empty_worlds: 0,
        }
    }

    fn consume(&mut self, world: &Graph, q: &Query) {
        let max_sized: Option<NodeSet> = if q.heuristic {
            // Heuristic stand-in: the densest subgraph found by core peeling.
            heuristic_dense_subgraphs(world, &q.notion).map(|h| h.subgraphs[0].clone())
        } else {
            max_sized_densest(world, &q.notion).map(|(_, ms)| ms)
        };
        match max_sized {
            Some(ms) => self.transactions.push(ms),
            None => self.empty_worlds += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        self.transactions.extend(other.transactions);
        self.empty_worlds += other.empty_worlds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::InterruptReason;

    fn fig1() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    /// Unwraps a run's MPDS details.
    fn mpds_details(run: Run) -> MpdsResult {
        match run.details {
            RunDetails::Mpds(r) => r,
            RunDetails::Nds(_) => unreachable!("built with Query::mpds"),
        }
    }

    /// Unwraps a run's NDS details.
    fn nds_details(run: Run) -> NdsResult {
        match run.details {
            RunDetails::Nds(r) => r,
            RunDetails::Mpds(_) => unreachable!("built with Query::nds"),
        }
    }

    /// The compile-time snapshot of the exported `mpds::api` surface: if a
    /// public item is renamed or removed, this use-list stops compiling and
    /// tier-1 fails. Extend it when the surface grows.
    #[test]
    fn public_api_surface_snapshot() {
        #[allow(unused_imports)]
        use crate::api::{
            queryset::{BatchRun, BatchStats, QuerySet},
            ApiError, Exec, NoProgress, ProgressCounter, ProgressSink, Query, Run, RunDetails,
            RunStats, SamplerKind, Score, Stop, StopReason,
        };
        // Constructor and terminal signatures are part of the contract.
        let _mpds: fn(DensityNotion) -> Query = Query::mpds;
        let _nds: fn(DensityNotion) -> Query = Query::nds;
        let _run: fn(&Query, &UncertainGraph) -> Result<Run, ApiError> = Query::run;
        let _build: fn(SamplerKind, &UncertainGraph, u64) -> Box<dyn WorldSampler> =
            SamplerKind::build;
        let _set: fn() -> QuerySet = QuerySet::new;
        let _push: fn(QuerySet, Query) -> QuerySet = QuerySet::push;
        let _batch: fn(&QuerySet, &UncertainGraph) -> Result<BatchRun, ApiError> = QuerySet::run;
        let _amortized: fn(&BatchStats) -> f64 = BatchStats::worlds_per_member;
        let _variants = [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss];
        let _modes = [Exec::Serial, Exec::Threads(2)];
        let _scores = [Score::TauHat, Score::GammaHat];
        let _stops = [
            Stop::FixedTheta,
            Stop::Stable {
                window: 8,
                min_theta: 8,
                theta_cap: 100,
            },
        ];
        let _reasons = [
            StopReason::Completed,
            StopReason::Stable,
            StopReason::Budget,
        ];
    }

    /// The serial seeding contract: `run()` with seed `s` is bit-identical
    /// to `run_with_sampler` over an equally-seeded external sampler — the
    /// behavior the deleted `top_k_mpds` free function pinned.
    #[test]
    fn serial_mpds_matches_equally_seeded_external_sampler() {
        let g = fig1();
        let q = Query::mpds(DensityNotion::Edge).theta(300).k(3);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(17));
        let external = mpds_details(q.clone().run_with_sampler(&g, &mut mc).unwrap());
        let run = q.seed(17).run(&g).unwrap();
        let internal = mpds_details(run);
        assert_eq!(internal.top_k, external.top_k);
        assert_eq!(internal.candidates, external.candidates);
        assert_eq!(internal.densest_counts, external.densest_counts);
        assert_eq!(internal.empty_worlds, external.empty_worlds);
    }

    /// `Exec::Threads(n)` merges worker sub-streams in worker order: worker
    /// `w`'s contribution equals a serial run over MC sub-stream `w` with
    /// its quota, and the merged top-k is `select_top_k` of the summed
    /// candidate tables.
    #[test]
    fn threads_mpds_merges_worker_substreams_in_order() {
        let g = fig1();
        let (seed, theta, workers) = (42u64, 500usize, 3usize);
        let per = theta / workers;
        let extra = theta % workers;
        let mut expected_candidates: HashMap<NodeSet, u32> = HashMap::new();
        let mut expected_counts: Vec<usize> = Vec::new();
        for w in 0..workers {
            let quota = per + usize::from(w < extra);
            let mut mc = MonteCarlo::with_stream(&g, seed, w as u64);
            let part = mpds_details(
                Query::mpds(DensityNotion::Edge)
                    .theta(quota)
                    .k(3)
                    .run_with_sampler(&g, &mut mc)
                    .unwrap(),
            );
            for (set, c) in part.candidates {
                *expected_candidates.entry(set).or_insert(0) += c;
            }
            expected_counts.extend(part.densest_counts);
        }
        let expected_top_k = select_top_k(&expected_candidates, 3, theta);
        let run = Query::mpds(DensityNotion::Edge)
            .theta(theta)
            .k(3)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&g)
            .unwrap();
        assert_eq!(run.top_k, expected_top_k);
        let details = mpds_details(run);
        assert_eq!(details.candidates, expected_candidates);
        assert_eq!(details.densest_counts, expected_counts);
    }

    /// The serial seeding contract for NDS (the behavior the deleted
    /// `top_k_nds` free function pinned).
    #[test]
    fn serial_nds_matches_equally_seeded_external_sampler() {
        let g = fig1();
        let q = Query::nds(DensityNotion::Edge).theta(200).k(4).min_size(2);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(8));
        let external = nds_details(q.clone().run_with_sampler(&g, &mut mc).unwrap());
        let run = q.seed(8).run(&g).unwrap();
        let internal = nds_details(run);
        assert_eq!(internal.top_k, external.top_k);
        assert_eq!(internal.transactions, external.transactions);
        assert_eq!(internal.empty_worlds, external.empty_worlds);
    }

    #[test]
    fn threads_nds_concatenates_worker_streams_in_order() {
        let g = fig1();
        let (seed, theta, workers) = (9u64, 90usize, 4usize);
        // Expected: worker w's transactions are a serial run over MC
        // sub-stream w with its quota.
        let per = theta / workers;
        let extra = theta % workers;
        let mut expected: Vec<NodeSet> = Vec::new();
        for w in 0..workers {
            let quota = per + usize::from(w < extra);
            let mut mc = MonteCarlo::with_stream(&g, seed, w as u64);
            let part = nds_details(
                Query::nds(DensityNotion::Edge)
                    .theta(quota)
                    .k(4)
                    .min_size(2)
                    .run_with_sampler(&g, &mut mc)
                    .unwrap(),
            );
            expected.extend(part.transactions);
        }
        let run = Query::nds(DensityNotion::Edge)
            .theta(theta)
            .k(4)
            .seed(seed)
            .exec(Exec::Threads(workers))
            .run(&g)
            .unwrap();
        assert_eq!(nds_details(run).transactions, expected);
    }

    /// Regression carried over from the deleted `parallel` module: with the
    /// old `seed + w` worker seeding, a 2-worker run rooted at seed 1 shared
    /// worker 1's entire world stream with a run rooted at seed 2 (its
    /// worker 0). The decorrelated sub-streams must make adjacent-seed runs
    /// draw genuinely different world multisets.
    #[test]
    fn adjacent_root_seeds_draw_different_worlds() {
        let g = fig1();
        let q = Query::mpds(DensityNotion::Edge)
            .theta(64)
            .k(3)
            .exec(Exec::Threads(2));
        let a = mpds_details(q.clone().seed(1).run(&g).unwrap());
        let b = mpds_details(q.seed(2).run(&g).unwrap());
        // Identical per-world densest counts in order would mean shared
        // streams; the halves must not line up under any worker alignment.
        assert_ne!(a.densest_counts[..32], b.densest_counts[..32]);
        assert_ne!(a.densest_counts[32..], b.densest_counts[..32]);
    }

    /// Carried over from the deleted `parallel` module: the threaded
    /// estimator stays unbiased — it converges to the exact MPDS.
    #[test]
    fn threads_converge_to_exact() {
        let g = fig1();
        let run = Query::mpds(DensityNotion::Edge)
            .theta(8000)
            .k(1)
            .seed(3)
            .exec(Exec::Threads(4))
            .run(&g)
            .unwrap();
        assert_eq!(run.top_k[0].0, vec![1, 3]);
        assert!((run.top_k[0].1 - 0.42).abs() < 0.03);
        assert_eq!(mpds_details(run).densest_counts.len(), 8000);
    }

    #[test]
    fn validation_rejects_bad_knobs_once() {
        let g = fig1();
        let bad = |q: Query, param: &str| match q.run(&g) {
            Err(ApiError::InvalidParameter { param: p, .. }) => assert_eq!(p, param),
            other => panic!("expected invalid {param}, got {other:?}"),
        };
        bad(Query::mpds(DensityNotion::Edge).theta(0), "theta");
        bad(
            Query::mpds(DensityNotion::Edge).exec(Exec::Threads(0)),
            "exec",
        );
        bad(
            Query::mpds(DensityNotion::Edge)
                .theta(2)
                .exec(Exec::Threads(3)),
            "exec",
        );
        let unsupported = Query::mpds(DensityNotion::Edge)
            .theta(10)
            .all_densest(false)
            .exec(Exec::Threads(2))
            .run(&g);
        assert!(matches!(unsupported, Err(ApiError::Unsupported { .. })));
    }

    /// The builder accepts degenerate `k = 0` ("rank nothing") and NDS
    /// `min_size = 0` (no size floor) instead of panicking on an
    /// "unreachable" validation error — behavior inherited from the deleted
    /// legacy entry points.
    #[test]
    fn degenerate_k_and_min_size_stay_legal() {
        let g = fig1();
        let run = Query::mpds(DensityNotion::Edge)
            .theta(20)
            .k(0)
            .run(&g)
            .unwrap();
        assert!(run.top_k.is_empty());
        let run = Query::nds(DensityNotion::Edge)
            .theta(20)
            .k(2)
            .min_size(0)
            .run(&g)
            .unwrap();
        assert!(run.top_k.len() <= 2);
    }

    #[test]
    fn external_sampler_rejects_threads() {
        let g = fig1();
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let err = Query::mpds(DensityNotion::Edge)
            .theta(10)
            .exec(Exec::Threads(2))
            .run_with_sampler(&g, &mut mc)
            .unwrap_err();
        assert!(matches!(err, ApiError::Unsupported { .. }));
    }

    #[test]
    fn interrupted_run_reports_reason_serial_and_threads() {
        use std::time::Duration;
        let g = fig1();
        let expired =
            RunControl::unbounded().with_deadline(Instant::now() - Duration::from_millis(1));
        for exec in [Exec::Serial, Exec::Threads(2)] {
            let err = Query::mpds(DensityNotion::Edge)
                .theta(1000)
                .control(expired.clone())
                .exec(exec)
                .run(&g)
                .unwrap_err();
            match err {
                ApiError::Interrupted(i) => {
                    assert_eq!(i.reason, InterruptReason::DeadlineExceeded);
                    assert_eq!(i.completed_worlds, 0);
                }
                other => panic!("expected interruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn progress_counts_worlds_under_both_exec_modes() {
        let g = fig1();
        for exec in [Exec::Serial, Exec::Threads(3)] {
            let counter = ProgressCounter::new();
            Query::mpds(DensityNotion::Edge)
                .theta(60)
                .progress(counter.clone())
                .exec(exec)
                .run(&g)
                .unwrap();
            assert_eq!(counter.done(), 60, "{exec:?}");
            assert_eq!(counter.requested(), 60, "{exec:?}");
        }
    }

    #[test]
    fn samplers_are_selectable_and_deterministic() {
        let g = fig1();
        for kind in [SamplerKind::MonteCarlo, SamplerKind::Lp, SamplerKind::Rss] {
            let q = Query::mpds(DensityNotion::Edge)
                .theta(400)
                .k(1)
                .sampler(kind)
                .seed(5);
            let a = q.run(&g).unwrap();
            let b = q.run(&g).unwrap();
            assert_eq!(a.top_k, b.top_k, "{}", kind.name());
            // All strategies find the true MPDS {B, D} at this θ.
            assert_eq!(a.top_k[0].0, vec![1, 3], "{}", kind.name());
        }
    }

    #[test]
    fn heuristic_parallel_is_deterministic() {
        let g = fig1();
        let q = Query::mpds(DensityNotion::Edge)
            .theta(200)
            .k(2)
            .heuristic(true)
            .exec(Exec::Threads(2));
        let a = q.run(&g).unwrap();
        let b = q.run(&g).unwrap();
        assert_eq!(a.top_k, b.top_k);
        assert!(!a.top_k.is_empty());
    }

    /// An already-expired budget still samples exactly one world and the
    /// result is bit-identical to a fixed-θ run with θ = 1 — the graceful
    /// counterpart of the abortive expired-deadline test above.
    #[test]
    fn expired_budget_returns_a_one_world_estimate() {
        use std::time::Duration;
        let g = fig1();
        let spent = RunControl::unbounded().with_budget(Instant::now() - Duration::from_millis(1));
        let run = Query::mpds(DensityNotion::Edge)
            .theta(10_000)
            .k(3)
            .seed(7)
            .control(spent)
            .run(&g)
            .unwrap();
        assert_eq!(run.stats.stop_reason, StopReason::Budget);
        assert_eq!(run.stats.worlds_sampled, 1);
        assert_eq!(run.stats.converged_at, None);
        let one = Query::mpds(DensityNotion::Edge)
            .theta(1)
            .k(3)
            .seed(7)
            .run(&g)
            .unwrap();
        assert_eq!(run.top_k, one.top_k);
        assert_eq!(mpds_details(run).candidates, mpds_details(one).candidates);
    }

    /// A threaded run under an expired budget still merges one world per
    /// worker instead of aborting.
    #[test]
    fn expired_budget_under_threads_is_graceful() {
        use std::time::Duration;
        let g = fig1();
        let spent = RunControl::unbounded().with_budget(Instant::now() - Duration::from_millis(1));
        let run = Query::mpds(DensityNotion::Edge)
            .theta(1000)
            .k(3)
            .control(spent)
            .exec(Exec::Threads(2))
            .run(&g)
            .unwrap();
        assert_eq!(run.stats.stop_reason, StopReason::Budget);
        assert_eq!(run.stats.worlds_sampled, 2); // one world per worker
    }

    /// The tentpole guarantee: a `Stop::Stable` run that stops at `t`
    /// worlds is bit-identical to `Stop::FixedTheta` with `theta(t)` under
    /// the same seed (same stream prefix, same divisor).
    #[test]
    fn stable_stop_is_bit_identical_to_fixed_theta_at_the_stop_point() {
        let g = fig1();
        let stable = Query::mpds(DensityNotion::Edge)
            .k(2)
            .seed(11)
            .stop(Stop::Stable {
                window: 24,
                min_theta: 24,
                theta_cap: 6000,
            })
            .run(&g)
            .unwrap();
        assert_eq!(stable.stats.stop_reason, StopReason::Stable);
        let t = stable.stats.worlds_sampled;
        assert!(t < 6000, "expected an early stop, sampled {t}");
        assert_eq!(stable.stats.converged_at, Some(t - 24));
        let fixed = Query::mpds(DensityNotion::Edge)
            .k(2)
            .seed(11)
            .theta(t)
            .run(&g)
            .unwrap();
        assert_eq!(stable.top_k, fixed.top_k);
        assert_eq!(
            mpds_details(stable).candidates,
            mpds_details(fixed).candidates
        );
    }

    /// `min_theta` floors the stop even when the top-k is stable from the
    /// first world (a certain graph never changes its ranking).
    #[test]
    fn stable_respects_the_min_theta_floor() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let run = Query::mpds(DensityNotion::Edge)
            .k(1)
            .stop(Stop::Stable {
                window: 4,
                min_theta: 50,
                theta_cap: 500,
            })
            .run(&g)
            .unwrap();
        assert_eq!(run.stats.stop_reason, StopReason::Stable);
        assert!(run.stats.worlds_sampled >= 50);
    }

    /// A ranking that never settles runs to `theta_cap` and reports
    /// `Completed`, exactly like a fixed-θ run at the cap.
    #[test]
    fn stable_that_never_settles_completes_at_the_cap() {
        let g = fig1();
        let run = Query::mpds(DensityNotion::Edge)
            .k(4)
            .seed(5)
            .stop(Stop::Stable {
                window: 1000,
                min_theta: 1,
                theta_cap: 20,
            })
            .run(&g)
            .unwrap();
        assert_eq!(run.stats.stop_reason, StopReason::Completed);
        assert_eq!(run.stats.worlds_sampled, 20);
        assert_eq!(run.stats.converged_at, None);
        let fixed = Query::mpds(DensityNotion::Edge)
            .k(4)
            .seed(5)
            .theta(20)
            .run(&g)
            .unwrap();
        assert_eq!(run.top_k, fixed.top_k);
    }

    /// NDS supports `Stop::Stable` too, with the same fixed-θ equivalence.
    #[test]
    fn stable_nds_matches_fixed_theta_at_the_stop_point() {
        let g = fig1();
        let stable = Query::nds(DensityNotion::Edge)
            .k(2)
            .min_size(2)
            .seed(3)
            .stop(Stop::Stable {
                window: 24,
                min_theta: 24,
                theta_cap: 4000,
            })
            .run(&g)
            .unwrap();
        assert_eq!(stable.stats.stop_reason, StopReason::Stable);
        let t = stable.stats.worlds_sampled;
        let fixed = Query::nds(DensityNotion::Edge)
            .k(2)
            .min_size(2)
            .seed(3)
            .theta(t)
            .run(&g)
            .unwrap();
        assert_eq!(stable.top_k, fixed.top_k);
        assert_eq!(
            nds_details(stable).transactions,
            nds_details(fixed).transactions
        );
    }

    #[test]
    fn stable_stop_validation_and_threads_rejection() {
        let g = fig1();
        let bad = |stop: Stop| {
            let err = Query::mpds(DensityNotion::Edge).stop(stop).run(&g);
            assert!(
                matches!(err, Err(ApiError::InvalidParameter { param: "stop", .. })),
                "{stop:?}"
            );
        };
        bad(Stop::Stable {
            window: 0,
            min_theta: 1,
            theta_cap: 10,
        });
        bad(Stop::Stable {
            window: 1,
            min_theta: 1,
            theta_cap: 0,
        });
        bad(Stop::Stable {
            window: 1,
            min_theta: 20,
            theta_cap: 10,
        });
        let err = Query::mpds(DensityNotion::Edge)
            .stop(Stop::Stable {
                window: 8,
                min_theta: 8,
                theta_cap: 100,
            })
            .exec(Exec::Threads(2))
            .run(&g);
        assert!(matches!(err, Err(ApiError::Unsupported { .. })));
    }

    /// Fixed-θ runs report `Completed` and the full θ — the default stats
    /// shape every pre-existing caller relies on.
    #[test]
    fn fixed_theta_stats_report_completed() {
        let g = fig1();
        let run = Query::mpds(DensityNotion::Edge).theta(30).run(&g).unwrap();
        assert_eq!(run.stats.stop_reason, StopReason::Completed);
        assert_eq!(run.stats.worlds_sampled, 30);
        assert_eq!(run.stats.converged_at, None);
    }

    #[test]
    fn stats_carry_convergence_diagnostics() {
        let g = fig1();
        let run = Query::mpds(DensityNotion::Edge).theta(100).run(&g).unwrap();
        let (mean, _std, q) = run.stats.densest_count_summary.unwrap();
        assert!(mean >= 0.0 && q[0] <= q[1] && q[1] <= q[2]);
        let nds = Query::nds(DensityNotion::Edge).theta(50).run(&g).unwrap();
        assert!(nds.stats.densest_count_summary.is_none());
        assert_eq!(nds.stats.worlds_sampled, 50);
    }
}
