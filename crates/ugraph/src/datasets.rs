//! Datasets: the embedded Zachary Karate Club network and deterministic,
//! seeded synthetic stand-ins for the paper's larger datasets (Table II).
//!
//! The paper evaluates on Karate Club, Intel Lab, LastFM, Homo Sapiens,
//! Biomine, Twitter, and Friendster. Only Karate Club is small and public
//! enough to embed; the others are replaced by generators matched on density
//! structure and edge-probability distribution, scaled down for the two
//! largest (see DESIGN.md §4). Every dataset is deterministic given its seed.

use crate::generators;
use crate::graph::{Graph, NodeId};
use crate::probability;
use crate::uncertain::UncertainGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named uncertain graph plus optional ground-truth community labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset label as used in the paper's tables.
    pub name: String,
    /// The uncertain graph itself.
    pub graph: UncertainGraph,
    /// Ground-truth community of each node, when known.
    pub communities: Option<Vec<usize>>,
}

/// Zachary's Karate Club: 34 nodes, 78 edges, with the canonical two-faction
/// ground truth (Mr. Hi vs the Officer).
///
/// Edge probabilities follow the paper's model `1 − e^{−t/20}` where `t` is
/// the number of communications on the edge. The original per-edge interaction
/// counts are not shipped with the common graph distribution, so counts are
/// drawn deterministically (fixed seed) from `4..=9`, which reproduces
/// Table II's probability statistics (mean ≈ 0.25, quartiles ≈ {.18,.26,.33}).
pub fn karate_club() -> Dataset {
    let edges = karate_edges();
    let graph = Graph::from_edges(34, &edges);
    let mut rng = StdRng::seed_from_u64(0x4B41_5241); // "KARA"

    // Communication counts correlate with how social the endpoints are
    // (hub members interact more), plus noise — matching how the original
    // interaction weights concentrate on the faction leaders. This keeps
    // Table II's probability statistics and, as in the paper, makes most
    // sampled worlds have a near-unique densest subgraph (Table VIII).
    let counts: Vec<u32> = graph
        .edges()
        .iter()
        .map(|&(u, v)| {
            let social = (graph.degree(u) + graph.degree(v)) as u32 / 4;
            (1 + social + rng.gen_range(0..=2)).clamp(2, 11)
        })
        .collect();
    let probs = probability::probs_from_counts(&counts, 20.0);
    Dataset {
        name: "KarateClub".into(),
        graph: UncertainGraph::new(graph, probs),
        communities: Some(karate_communities()),
    }
}

/// The canonical 78-edge list of Zachary's karate club (0-indexed).
pub fn karate_edges() -> Vec<(NodeId, NodeId)> {
    vec![
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ]
}

/// Ground-truth faction of each karate node: 0 = Mr. Hi, 1 = Officer.
pub fn karate_communities() -> Vec<usize> {
    let mr_hi = [0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21];
    (0..34)
        .map(|v| if mr_hi.contains(&v) { 0 } else { 1 })
        .collect()
}

/// Intel-Lab-like sensor network: 54 sensors on a jittered 9×6 lab grid,
/// pairs within radio range connected (~969 edges as in Table II), and the
/// probability of an edge = simulated message-delivery rate decaying with
/// distance (plus fading noise). The spatial decay produces the clustered
/// high-probability neighborhoods that make the MPDS differ from the
/// expectation-based baselines, like the real deployment.
pub fn intel_lab_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<(f64, f64)> = (0..54)
        .map(|i| {
            let (row, col) = (i / 9, i % 9);
            (
                col as f64 + rng.gen_range(-0.3..0.3),
                row as f64 * 1.1 + rng.gen_range(-0.3..0.3),
            )
        })
        .collect();
    // Radio range chosen so ~2/3 of the 1431 pairs are connected (m ≈ 969).
    let range = 5.15;
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for u in 0..54usize {
        for v in (u + 1)..54 {
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= range {
                // Delivery rate: strong up close, noisy exponential decay.
                let fading = rng.gen_range(-0.08..0.08);
                let p = (0.95 * (-d / 2.8).exp() + fading).clamp(0.02, 1.0);
                edges.push((u as NodeId, v as NodeId, p));
            }
        }
    }
    Dataset {
        name: "IntelLab-like".into(),
        graph: UncertainGraph::from_weighted_edges(54, &edges),
        communities: None,
    }
}

/// LastFM-like social network at the paper's scale (n ≈ 6 899, m ≈ 23 696):
/// sparse preferential-attachment backbone plus many *small* listening
/// groups (cliques of 4–7) among low-degree users; probabilities follow the
/// paper's inverse-degree model.
///
/// The small groups matter: under `p = 1/max(deg)`, only low-degree tight
/// groups have edges probable enough (~0.1–0.25) to realize triangles and
/// diamonds in sampled worlds, which is what produces the paper's huge
/// heavy-tailed densest-subgraph counts on LastFM (Table VIII).
pub fn lastfm_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 6_899usize;
    let g0 = generators::barabasi_albert(n, 2, &mut rng);
    let mut edges: std::collections::BTreeSet<(NodeId, NodeId)> =
        g0.edges().iter().copied().collect();
    let mut labels = vec![usize::MAX; n];
    // 550 listening groups of 4..=7 users each, drawn from the high-index
    // (low-backbone-degree) half of the nodes.
    let mut next = n / 2;
    for c in 0..550 {
        let size = 4 + (c % 4);
        if next + size > n {
            break;
        }
        for u in next..next + size {
            labels[u] = c;
            for v in (u + 1)..next + size {
                if rng.gen_bool(0.9) {
                    edges.insert((u as NodeId, v as NodeId));
                }
            }
        }
        next += size;
    }
    let edge_list: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
    let g = Graph::from_edges(n, &edge_list);
    let probs = probability::inverse_degree_probs(&g);
    Dataset {
        name: "LastFM-like".into(),
        graph: UncertainGraph::new(g, probs),
        communities: Some(labels),
    }
}

/// Homo-Sapiens-like protein interaction network, scaled (paper: n = 18 384,
/// m = 995 916; ours: n = 3 000, m ≈ 60 000 with the same average-degree
/// skew). Probabilities are experimental confidences (truncated normal,
/// mean 0.32 / std 0.21 as in Table II).
pub fn homo_sapiens_like(seed: u64) -> Dataset {
    scaled_bio_like(
        "HomoSapiens-like",
        3_000,
        18,
        &[40, 32, 28],
        0.6,
        0.32,
        0.21,
        seed,
    )
}

/// Biomine-like integrated biological database, scaled (paper: n ≈ 1.0 M,
/// m ≈ 6.7 M; ours: n = 10 000, m ≈ 70 000). Mean prob 0.27 / std 0.21.
pub fn biomine_like(seed: u64) -> Dataset {
    scaled_bio_like(
        "Biomine-like",
        10_000,
        6,
        &[36, 30, 24, 20],
        0.55,
        0.27,
        0.21,
        seed,
    )
}

fn scaled_bio_like(
    name: &str,
    n: usize,
    attach: usize,
    community_sizes: &[usize],
    p_in: f64,
    mean: f64,
    std: f64,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, labels) = generators::community_backbone(n, attach, community_sizes, p_in, &mut rng);
    let probs = probability::truncated_normal_probs(g.num_edges(), mean, std, 0.02, 1.0, &mut rng);
    Dataset {
        name: name.into(),
        graph: UncertainGraph::new(g, probs),
        communities: Some(labels),
    }
}

/// Twitter-like retweet network, scaled (paper: n ≈ 6.3 M, m ≈ 11.1 M; ours:
/// n = 20 000, m ≈ 42 000 — same sparsity, avg degree < 4). Probabilities
/// come from the paper's `1 − e^{−t/20}` model over skewed retweet counts,
/// reproducing Table II's low mean (≈ 0.14).
pub fn twitter_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [26, 22, 18, 16];
    let (g, labels) = generators::community_backbone(20_000, 2, &sizes, 0.7, &mut rng);
    // Background retweet counts are tiny; within the planted communities
    // users retweet each other heavily (as in the real network's dense echo
    // chambers), so those edges are near-certain and the communities anchor
    // the densest subgraphs of most sampled worlds.
    let probs: Vec<f64> = g
        .edges()
        .iter()
        .map(|&(u, v)| {
            let planted =
                labels[u as usize] != usize::MAX && labels[u as usize] == labels[v as usize];
            let t = if planted {
                rng.gen_range(25..=60) as f64
            } else {
                let mut t = 1u32;
                while t < 40 && rng.gen_bool(0.35) {
                    t += 1;
                }
                t as f64
            };
            probability::exponential_cdf(t, 20.0).max(1e-6)
        })
        .collect();
    Dataset {
        name: "Twitter-like".into(),
        graph: UncertainGraph::new(g, probs),
        communities: Some(labels),
    }
}

/// Friendster-like friendship network, heavily scaled (paper: n ≈ 65.6 M,
/// m ≈ 1.8 B; ours: n = 50 000, m ≈ 250 000). Very low edge probabilities
/// (Table II mean 0.005) from the `1 − e^{−t/20}` model over tiny counts.
pub fn friendster_like(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [60, 50, 40];
    let (g, labels) = generators::community_backbone(50_000, 5, &sizes, 0.8, &mut rng);
    let m = g.num_edges();
    // Mostly single interactions (p = 1 - e^{-1/20} ≈ 0.049); the planted
    // communities get more interactions so that some worlds contain clearly
    // densest subgraphs even at this probability scale.
    let probs: Vec<f64> = g
        .edges()
        .iter()
        .map(|&(u, v)| {
            let planted =
                labels[u as usize] != usize::MAX && labels[u as usize] == labels[v as usize];
            let t = if planted {
                rng.gen_range(8..=20) as f64
            } else if rng.gen_bool(0.05) {
                rng.gen_range(1..=4) as f64
            } else {
                0.1 // fractional "interaction strength" for silent edges
            };
            probability::exponential_cdf(t, 20.0).max(1e-4)
        })
        .collect();
    debug_assert_eq!(probs.len(), m);
    Dataset {
        name: "Friendster-like".into(),
        graph: UncertainGraph::new(g, probs),
        communities: Some(labels),
    }
}

/// The paper's synthetic accuracy graphs (§VI-H): `BA n` / `ER n` with
/// uniformly random edge probabilities. `BA 7` has m = 11 edges and `BA 9`
/// m = 21, close to the paper's Table XV (13 and 21). `ER 7` / `ER 9` use
/// m = 20 / 22 (the paper used 20 / 30; we cap at 22 so that the exact
/// solver's 2^m sweep stays laptop-feasible, as recorded in DESIGN.md §4).
pub fn synthetic_accuracy_graph(kind: &str, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match kind {
        "BA7" => generators::barabasi_albert(7, 2, &mut rng),
        "BA9" => generators::barabasi_albert(9, 3, &mut rng),
        "ER7" => generators::erdos_renyi_nm(7, 20, &mut rng),
        "ER9" => generators::erdos_renyi_nm(9, 22, &mut rng),
        other => panic!("unknown synthetic graph {other}"),
    };
    let probs = probability::uniform_probs(g.num_edges(), 0.05, 1.0, &mut rng);
    Dataset {
        name: kind.into(),
        graph: UncertainGraph::new(g, probs),
        communities: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::prob_stats;

    #[test]
    fn karate_shape() {
        let d = karate_club();
        assert_eq!(d.graph.num_nodes(), 34);
        assert_eq!(d.graph.num_edges(), 78);
        let comms = d.communities.unwrap();
        assert_eq!(comms.len(), 34);
        assert_eq!(comms[0], 0);
        assert_eq!(comms[33], 1);
        assert_eq!(comms.iter().filter(|&&c| c == 0).count(), 17);
    }

    #[test]
    fn karate_degrees_match_canon() {
        let d = karate_club();
        let g = d.graph.graph();
        // Well-known degrees: node 33 has 17 neighbors, node 0 has 16,
        // node 32 has 12, node 11 has 1.
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(32), 12);
        assert_eq!(g.degree(11), 1);
    }

    #[test]
    fn karate_probs_match_table2() {
        let d = karate_club();
        let (mean, std, q) = prob_stats(d.graph.probs());
        // Table II: mean .25, std .09 (approximately; we check loosely).
        assert!((mean - 0.27).abs() < 0.05, "mean {mean}");
        assert!(std < 0.12, "std {std}");
        assert!(q[0] > 0.15 && q[2] < 0.40, "quartiles {q:?}");
    }

    #[test]
    fn karate_is_deterministic() {
        let a = karate_club();
        let b = karate_club();
        assert_eq!(a.graph.probs(), b.graph.probs());
    }

    #[test]
    fn intel_lab_shape() {
        let d = intel_lab_like(1);
        assert_eq!(d.graph.num_nodes(), 54);
        // Geometric construction: edge count near the paper's 969.
        let m = d.graph.num_edges();
        assert!((900..=1_060).contains(&m), "m = {m}");
        let (mean, _, _) = prob_stats(d.graph.probs());
        assert!((mean - 0.33).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn lastfm_shape() {
        let d = lastfm_like(1);
        assert_eq!(d.graph.num_nodes(), 6_899);
        let m = d.graph.num_edges();
        assert!((20_000..28_000).contains(&m), "m = {m}");
    }

    #[test]
    fn twitter_like_probs_are_low() {
        let d = twitter_like(1);
        let (mean, _, _) = prob_stats(d.graph.probs());
        assert!(mean < 0.30, "mean {mean}");
    }

    #[test]
    fn friendster_like_probs_are_tiny() {
        let d = friendster_like(1);
        let (mean, _, _) = prob_stats(d.graph.probs());
        assert!(mean < 0.05, "mean {mean}");
        assert!(d.graph.num_edges() > 150_000);
    }

    #[test]
    fn synthetic_accuracy_graphs() {
        for kind in ["BA7", "BA9", "ER7", "ER9"] {
            let d = synthetic_accuracy_graph(kind, 42);
            assert!(d.graph.num_edges() <= 22, "{kind}");
            assert!(d.graph.num_nodes() <= 9);
        }
        assert_eq!(synthetic_accuracy_graph("BA7", 1).graph.num_edges(), 11);
        assert_eq!(synthetic_accuracy_graph("BA9", 1).graph.num_edges(), 21);
    }

    #[test]
    #[should_panic(expected = "unknown synthetic graph")]
    fn unknown_synthetic_rejected() {
        synthetic_accuracy_graph("XX", 0);
    }
}
