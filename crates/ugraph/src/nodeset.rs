//! Canonical node sets and set-comparison helpers.
//!
//! Throughout the workspace a candidate subgraph is identified by its *node
//! set*: a sorted, duplicate-free `Vec<NodeId>`. Sorted vectors hash and
//! compare cheaply and keep the candidate maps of Algorithm 1 compact. For
//! hot membership tests ("is `v` in the candidate?") the dense complement is
//! [`crate::bitset::NodeBitSet`]; the sorted-vec form stays the canonical
//! key type.

use crate::graph::NodeId;

/// A sorted, duplicate-free set of node identifiers.
pub type NodeSet = Vec<NodeId>;

/// Sorts and deduplicates `nodes` in place, returning it as a canonical set.
pub fn canonicalize(mut nodes: Vec<NodeId>) -> NodeSet {
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Whether sorted set `a` is a subset of sorted set `b`.
pub fn is_subset(a: &[NodeId], b: &[NodeId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        // Advance j to the first element >= x.
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Size of the intersection of two sorted sets.
pub fn intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut cnt) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                cnt += 1;
                i += 1;
                j += 1;
            }
        }
    }
    cnt
}

/// F1 score of a returned set `pred` against a ground-truth set `truth`
/// (used in the paper's Fig. 17/18 comparisons to the exact method).
pub fn f1_score(pred: &[NodeId], truth: &[NodeId]) -> f64 {
    if pred.is_empty() || truth.is_empty() {
        return if pred.is_empty() && truth.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let inter = intersection_size(pred, truth) as f64;
    if inter == 0.0 {
        return 0.0;
    }
    let precision = inter / pred.len() as f64;
    let recall = inter / truth.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Jaccard similarity of two sorted sets.
pub fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b) as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

/// Average best-match Jaccard similarity between two collections of node sets.
///
/// Used for the paper's Fig. 19 convergence study: "similarity of the returned
/// node sets to those for the previous value of θ". Each set in `a` is matched
/// to its most similar set in `b` and vice versa; the two directional averages
/// are averaged (a symmetric greedy matching).
pub fn set_family_similarity(a: &[NodeSet], b: &[NodeSet]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[NodeSet], ys: &[NodeSet]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| jaccard(x, y)).fold(0.0_f64, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    0.5 * (dir(a, b) + dir(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_sorts_and_dedups() {
        assert_eq!(canonicalize(vec![3, 1, 3, 2]), vec![1, 2, 3]);
        assert!(canonicalize(vec![]).is_empty());
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 3]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn intersections() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[1], &[2]), 0);
    }

    #[test]
    fn f1_basics() {
        assert_eq!(f1_score(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(f1_score(&[1], &[2]), 0.0);
        // pred={1,2,3}, truth={2,3,4}: P=2/3, R=2/3, F1=2/3.
        let f1 = f1_score(&[1, 2, 3], &[2, 3, 4]);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f1_score(&[], &[]), 1.0);
        assert_eq!(f1_score(&[], &[1]), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn family_similarity() {
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(set_family_similarity(&a, &b), 1.0);
        let c = vec![vec![1, 2]];
        // a->c: best for [1,2] is 1.0, for [3,4] is 0.0 -> 0.5; c->a: 1.0.
        assert!((set_family_similarity(&a, &c) - 0.75).abs() < 1e-12);
        assert_eq!(set_family_similarity(&[], &[]), 1.0);
    }
}
