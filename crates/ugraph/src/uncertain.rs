//! Uncertain graphs `G = (V, E, p)` and possible-world semantics.
//!
//! An [`UncertainGraph`] is a deterministic [`Graph`] plus one existence
//! probability per canonical edge. Under the independence assumption the graph
//! is a distribution over `2^m` possible worlds (paper Eq. 1); this module
//! provides world materialization from edge masks, exhaustive world iteration
//! for the exact solvers, and expected-density helpers.

use crate::bitset::{EdgeMask, NodeBitSet};
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// An uncertain graph: every edge `e` of the underlying deterministic graph
/// exists independently with probability `p(e) ∈ (0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncertainGraph {
    graph: Graph,
    probs: Vec<f64>,
    /// Probability of the edge behind every CSR arc (parallel to
    /// [`Graph::arc_targets`]), so neighborhood-with-probability scans are
    /// one contiguous slice pair instead of per-edge binary searches.
    arc_probs: Vec<f64>,
}

impl UncertainGraph {
    /// Wraps a deterministic graph with per-edge probabilities, parallel to
    /// [`Graph::edges`].
    ///
    /// # Panics
    /// If the lengths disagree or any probability lies outside `(0, 1]`.
    pub fn new(graph: Graph, probs: Vec<f64>) -> Self {
        assert_eq!(
            graph.num_edges(),
            probs.len(),
            "one probability per edge required"
        );
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                p > 0.0 && p <= 1.0,
                "edge {i} has probability {p} outside (0, 1]"
            );
        }
        let arc_probs = graph
            .arc_edge_ids()
            .iter()
            .map(|&e| probs[e as usize])
            .collect();
        UncertainGraph {
            graph,
            probs,
            arc_probs,
        }
    }

    /// Builds directly from an edge list with probabilities.
    pub fn from_weighted_edges(n: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let graph = Graph::from_edges(
            n,
            &edges.iter().map(|&(u, v, _)| (u, v)).collect::<Vec<_>>(),
        );
        // Probabilities must be re-ordered to the canonical edge order.
        let mut probs = vec![0.0; graph.num_edges()];
        for &(u, v, p) in edges {
            let idx = graph.edge_index(u, v).expect("edge just inserted");
            probs[idx] = p;
        }
        UncertainGraph::new(graph, probs)
    }

    /// The underlying deterministic graph (the paper's "deterministic version",
    /// used by the DDS baseline of §VI-C).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of (possible) edges in the underlying graph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Probability of the `i`-th canonical edge.
    #[inline]
    pub fn prob(&self, edge_index: usize) -> f64 {
        self.probs[edge_index]
    }

    /// All edge probabilities, parallel to [`Graph::edges`].
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of edge `(u, v)`, if the edge exists in `E`.
    pub fn edge_prob(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.graph.edge_index(u, v).map(|i| self.probs[i])
    }

    /// Per-arc edge probabilities, parallel to [`Graph::arc_targets`].
    #[inline]
    pub fn arc_probs(&self) -> &[f64] {
        &self.arc_probs
    }

    /// Neighbors of `v` paired with the probability of each incident edge —
    /// two parallel contiguous slices, no per-edge lookups.
    #[inline]
    pub fn neighbors_with_probs(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let r = self.graph.arc_range(v);
        (&self.graph.arc_targets()[r.clone()], &self.arc_probs[r])
    }

    /// Materializes the possible world selected by `mask` (`mask[i]` = edge `i`
    /// is present). The world shares the node set `V`.
    pub fn world_from_mask(&self, mask: &[bool]) -> Graph {
        assert_eq!(mask.len(), self.num_edges());
        self.world_from_bitmap(&EdgeMask::from_bools(mask), Graph::default())
    }

    /// Materializes the possible world selected by an [`EdgeMask`], recycling
    /// `recycle`'s backing storage. This is the samplers' hot path: after the
    /// first few calls no allocation happens at all — the mask is a
    /// preallocated bitmap and the world's CSR arrays are rebuilt in place in
    /// `O(n + m/64 + m_world)`.
    pub fn world_from_bitmap(&self, mask: &EdgeMask, recycle: Graph) -> Graph {
        self.graph.filter_edges(mask, recycle)
    }

    /// Probability `Pr(G)` of the possible world selected by an [`EdgeMask`]
    /// (paper Eq. 1).
    pub fn world_probability_bitmap(&self, mask: &EdgeMask) -> f64 {
        assert_eq!(mask.universe(), self.num_edges());
        let mut pr = 1.0;
        for (i, &p) in self.probs.iter().enumerate() {
            pr *= if mask.contains(i) { p } else { 1.0 - p };
        }
        pr
    }

    /// Probability `Pr(G)` of the possible world selected by `mask`
    /// (paper Eq. 1).
    pub fn world_probability(&self, mask: &[bool]) -> f64 {
        assert_eq!(mask.len(), self.num_edges());
        let mut pr = 1.0;
        for (i, &present) in mask.iter().enumerate() {
            pr *= if present {
                self.probs[i]
            } else {
                1.0 - self.probs[i]
            };
        }
        pr
    }

    /// Iterates over all `2^m` possible worlds as `(mask, probability)`.
    ///
    /// Intended for the exact solvers on small graphs; panics if `m > 60`.
    pub fn iter_worlds(&self) -> WorldIter<'_> {
        assert!(
            self.num_edges() <= 60,
            "exhaustive world iteration requires m <= 60 (m = {})",
            self.num_edges()
        );
        WorldIter {
            ug: self,
            next: 0,
            total: 1u64 << self.num_edges(),
        }
    }

    /// Expected edge density of the subgraph induced by `nodes`
    /// (`Σ_{e ⊆ nodes} p(e) / |nodes|`): by linearity of expectation this is
    /// the expectation over possible worlds of the induced edge density, the
    /// quantity maximized by the EDS baseline \[44\].
    pub fn expected_edge_density(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        let mark = NodeBitSet::from_members(self.num_nodes(), nodes);
        let mut total = 0.0;
        for (i, &(u, v)) in self.graph.edges().iter().enumerate() {
            if mark.contains(u as usize) && mark.contains(v as usize) {
                total += self.probs[i];
            }
        }
        total / nodes.len() as f64
    }
}

/// Iterator over all possible worlds of a (small) uncertain graph.
pub struct WorldIter<'a> {
    ug: &'a UncertainGraph,
    next: u64,
    total: u64,
}

impl Iterator for WorldIter<'_> {
    type Item = (Vec<bool>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        let bits = self.next;
        self.next += 1;
        let m = self.ug.num_edges();
        let mask: Vec<bool> = (0..m).map(|i| bits >> i & 1 == 1).collect();
        let pr = self.ug.world_probability(&mask);
        Some((mask, pr))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 running example: a 4-node uncertain graph with edges
    /// (A,B):0.4, (A,C):0.4, (B,D):0.7 where A=0, B=1, C=2, D=3.
    ///
    /// These probabilities reproduce the possible-world probabilities of
    /// Table I: e.g. Pr(G1) = 0.6*0.6*0.3 = 0.108 ≈ 0.11 and
    /// Pr(G8) = 0.4*0.4*0.7 = 0.112 ≈ 0.11.
    pub(crate) fn fig1_example() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)])
    }

    #[test]
    fn construction_reorders_probs() {
        let ug = UncertainGraph::from_weighted_edges(3, &[(2, 1, 0.9), (1, 0, 0.1)]);
        assert_eq!(ug.edge_prob(0, 1), Some(0.1));
        assert_eq!(ug.edge_prob(2, 1), Some(0.9));
        assert_eq!(ug.edge_prob(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_zero_probability() {
        UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.0)]);
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let ug = fig1_example();
        let total: f64 = ug.iter_worlds().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(ug.iter_worlds().count(), 8);
    }

    #[test]
    fn fig1_world_probabilities_match_table1() {
        let ug = fig1_example();
        // World with no edges = G1 in the paper: Pr = 0.108.
        let empty = ug.world_probability(&[false, false, false]);
        assert!((empty - 0.108).abs() < 1e-12);
        // World with all edges = G8: Pr = 0.112.
        let full = ug.world_probability(&[true, true, true]);
        assert!((full - 0.112).abs() < 1e-12);
        // World with only (B,D) = G4 in the paper: 0.6*0.6*0.7 = 0.252.
        let g4 = ug.world_probability(&[false, false, true]);
        assert!((g4 - 0.252).abs() < 1e-12);
    }

    #[test]
    fn world_materialization() {
        let ug = fig1_example();
        let w = ug.world_from_mask(&[true, false, true]);
        assert_eq!(w.num_edges(), 2);
        assert!(w.has_edge(0, 1));
        assert!(w.has_edge(1, 3));
        assert!(!w.has_edge(0, 2));
    }

    #[test]
    fn bitmap_worlds_match_bool_worlds() {
        let ug = fig1_example();
        let mut recycle = Graph::default();
        for bits in 0..8u32 {
            let bools: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let mask = EdgeMask::from_bools(&bools);
            let a = ug.world_from_mask(&bools);
            let b = ug.world_from_bitmap(&mask, recycle);
            assert_eq!(a.edges(), b.edges());
            assert_eq!(a.num_nodes(), b.num_nodes());
            assert!(
                (ug.world_probability(&bools) - ug.world_probability_bitmap(&mask)).abs() < 1e-15
            );
            recycle = b;
        }
    }

    #[test]
    fn arc_probs_align_with_edge_probs() {
        let ug = fig1_example();
        assert_eq!(ug.arc_probs().len(), 2 * ug.num_edges());
        for v in 0..ug.num_nodes() as u32 {
            let (nbrs, probs) = ug.neighbors_with_probs(v);
            assert_eq!(nbrs.len(), probs.len());
            for (&w, &p) in nbrs.iter().zip(probs) {
                assert_eq!(ug.edge_prob(v, w), Some(p));
            }
        }
    }

    #[test]
    fn expected_density_matches_table1() {
        let ug = fig1_example();
        // Table I: EED({A,B}) = 0.2, EED({B,D}) = 0.35, EED({A,B,C,D}) = 0.375.
        assert!((ug.expected_edge_density(&[0, 1]) - 0.2).abs() < 1e-12);
        assert!((ug.expected_edge_density(&[1, 3]) - 0.35).abs() < 1e-12);
        assert!((ug.expected_edge_density(&[0, 1, 2, 3]) - 0.375).abs() < 1e-12);
        assert_eq!(ug.expected_edge_density(&[]), 0.0);
    }
}
