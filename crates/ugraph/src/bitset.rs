//! Dense bitsets over small integer universes.
//!
//! The hot loops of the MPDS pipeline repeatedly answer "is node `v` in this
//! set?" and "is edge `e` present in this world?". A `Vec<bool>` answers both
//! but costs one byte per element and one heap allocation per query set; the
//! [`DenseBitSet`] here packs the answers 64 per word so a million-edge world
//! mask fits in ~16 KiB of contiguous memory, and it is designed to be
//! *reused*: [`DenseBitSet::reset`] re-zeroes in place without reallocating.
//!
//! Two aliases name its roles: [`NodeBitSet`] (membership over `0..n` nodes,
//! the dense complement of the sorted-vec [`crate::nodeset::NodeSet`]) and
//! [`EdgeMask`] (edge presence over `0..m` canonical edge indices — the
//! possible-world masks produced by the samplers).

/// A fixed-universe dense bitset (`u64` words, one bit per element).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    universe: usize,
}

/// Dense node-membership set over `0..n` (see [`crate::nodeset`]).
pub type NodeBitSet = DenseBitSet;

/// Edge-presence bitmap over the canonical edge indices `0..m` of a graph —
/// the compact form of a sampled possible world.
pub type EdgeMask = DenseBitSet;

impl DenseBitSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        DenseBitSet {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
        }
    }

    /// Creates a set over `0..marks.len()` with bit `i` = `marks[i]`.
    pub fn from_bools(marks: &[bool]) -> Self {
        let mut s = DenseBitSet::new(marks.len());
        s.fill_from_bools(marks);
        s
    }

    /// Creates a set over `0..universe` containing exactly `members`.
    ///
    /// # Panics
    /// If any member is outside the universe.
    pub fn from_members(universe: usize, members: &[u32]) -> Self {
        let mut s = DenseBitSet::new(universe);
        for &v in members {
            s.insert(v as usize);
        }
        s
    }

    /// Size of the universe (`0..universe` are the addressable elements).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element, keeping the allocation and universe.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Re-targets the set to a (possibly different) universe and clears it.
    /// Reuses the existing allocation when large enough — the reset entry
    /// point for preallocated masks that outlive one sample.
    pub fn reset(&mut self, universe: usize) {
        self.universe = universe;
        self.words.clear();
        self.words.resize(universe.div_ceil(64), 0);
    }

    /// Whether `i` is in the set. Out-of-universe queries return `false`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(w) => w >> (i % 64) & 1 == 1,
            None => false,
        }
    }

    /// Inserts `i`, returning whether it was newly added.
    ///
    /// # Panics
    /// If `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.universe, "{i} outside universe {}", self.universe);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `i` if present.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Sets bit `i` to `present` (must be inside the universe).
    #[inline]
    pub fn set(&mut self, i: usize, present: bool) {
        assert!(i < self.universe, "{i} outside universe {}", self.universe);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if present {
            self.words[w] |= b;
        } else {
            self.words[w] &= !b;
        }
    }

    /// Overwrites the set from a `bool` slice (re-targeting the universe to
    /// `marks.len()`).
    pub fn fill_from_bools(&mut self, marks: &[bool]) {
        self.reset(marks.len());
        for (i, &b) in marks.iter().enumerate() {
            if b {
                self.words[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// The set as a `bool` vector of universe length.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.universe).map(|i| self.contains(i)).collect()
    }

    /// Iterates the members in ascending order (word-at-a-time scan).
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            next_word: 0,
            current: 0,
            base: 0,
        }
    }
}

/// Ascending iterator over the members of a [`DenseBitSet`].
#[derive(Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let w = *self.words.get(self.next_word)?;
            self.current = w;
            self.base = self.next_word * 64;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(!s.contains(1000)); // out of universe: false, no panic
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn ones_iterates_ascending() {
        let s = DenseBitSet::from_members(200, &[3, 64, 65, 199]);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 64, 65, 199]);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn bools_roundtrip() {
        let marks = [true, false, true, true, false];
        let s = DenseBitSet::from_bools(&marks);
        assert_eq!(s.to_bools(), marks);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut s = DenseBitSet::new(100);
        s.insert(50);
        s.reset(64);
        assert_eq!(s.universe(), 64);
        assert!(s.is_empty());
        s.insert(63);
        assert!(s.contains(63));
    }

    #[test]
    fn set_bit_both_ways() {
        let mut s = DenseBitSet::new(10);
        s.set(3, true);
        assert!(s.contains(3));
        s.set(3, false);
        assert!(!s.contains(3));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        DenseBitSet::new(4).insert(4);
    }

    #[test]
    fn empty_universe() {
        let s = DenseBitSet::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.ones().next().is_none());
    }
}
