//! Versioned dynamic uncertain graphs: a mutation overlay over an immutable
//! CSR base.
//!
//! The estimators and the serving layer are built around immutable
//! [`UncertainGraph`]s — construction is a batch operation and every
//! downstream structure (CSR rows, arc-aligned probabilities, edge masks)
//! assumes a frozen canonical edge list. Real deployments mutate: edges
//! appear, disappear, and get re-scored while queries are running.
//! [`DeltaGraph`] reconciles the two worlds:
//!
//! * **writes** go to a small sorted overlay (insert / delete / re-weight
//!   edges, add nodes) layered over an immutable `Arc`-shared base;
//! * **reads** see the merged view either through the
//!   [`DeltaGraph::neighbors_with_probs`]-style iteration contract (a
//!   two-pointer merge of the base CSR row with the overlay row — no
//!   materialization), or through cheap immutable [`Snapshot`]s tagged with
//!   a monotonically increasing generation;
//! * once the overlay exceeds a configurable fraction of the base edge
//!   count, the merged view is **compacted** into a fresh CSR base (via
//!   [`GraphBuilder`]) and the overlay drains to empty.
//!
//! Mutations are applied in transactional batches ([`MutationBatch`]): the
//! whole batch is validated against the pre-batch state first, so a rejected
//! batch leaves the graph untouched and the generation unchanged.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::uncertain::UncertainGraph;
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One edge mutation inside a [`MutationBatch`].
///
/// ```
/// use ugraph::dynamic::EdgeMutation;
/// let m = EdgeMutation::Upsert(0, 1, 0.5);
/// assert_ne!(m, EdgeMutation::Delete(0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeMutation {
    /// Insert the edge `(u, v)` with probability `p`, or re-weight it to `p`
    /// if it already exists.
    Upsert(NodeId, NodeId, f64),
    /// Delete the edge `(u, v)`; the edge must exist in the merged view.
    Delete(NodeId, NodeId),
}

impl EdgeMutation {
    /// The canonical `(min, max)` endpoint pair of this mutation.
    ///
    /// ```
    /// use ugraph::dynamic::EdgeMutation;
    /// assert_eq!(EdgeMutation::Delete(5, 2).key(), (2, 5));
    /// ```
    pub fn key(&self) -> (NodeId, NodeId) {
        let (u, v) = match *self {
            EdgeMutation::Upsert(u, v, _) => (u, v),
            EdgeMutation::Delete(u, v) => (u, v),
        };
        if u < v {
            (u, v)
        } else {
            (v, u)
        }
    }
}

/// A transactional group of mutations applied (and generation-stamped)
/// atomically by [`DeltaGraph::apply`].
///
/// ```
/// use ugraph::dynamic::{EdgeMutation, MutationBatch};
/// let batch = MutationBatch {
///     add_nodes: 1,
///     edges: vec![EdgeMutation::Upsert(0, 1, 0.9)],
/// };
/// assert_eq!(batch.add_nodes, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationBatch {
    /// Nodes appended before the edge mutations run; the new ids are
    /// `n..n + add_nodes` and the edge mutations may reference them.
    pub add_nodes: usize,
    /// Edge mutations; canonical endpoint pairs must be unique within one
    /// batch ([`DeltaError::DuplicateInBatch`] otherwise).
    pub edges: Vec<EdgeMutation>,
}

/// What a successful [`DeltaGraph::apply`] did.
///
/// ```
/// use ugraph::dynamic::ApplyStats;
/// let s = ApplyStats::default();
/// assert_eq!((s.inserted, s.reweighted, s.deleted, s.nodes_added), (0, 0, 0, 0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Edges that did not exist in the merged view before.
    pub inserted: usize,
    /// Existing edges whose probability was replaced.
    pub reweighted: usize,
    /// Edges removed from the merged view.
    pub deleted: usize,
    /// Nodes appended by the batch.
    pub nodes_added: usize,
}

/// Why a mutation batch was rejected. The graph is left untouched.
///
/// ```
/// use ugraph::dynamic::DeltaError;
/// let e = DeltaError::SelfLoop(3);
/// assert!(e.to_string().contains("self-loop"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaError {
    /// A mutation references the edge `(v, v)`.
    SelfLoop(NodeId),
    /// An endpoint is `>= num_nodes()` (after the batch's `add_nodes`).
    OutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The node count the batch would have produced.
        n: usize,
    },
    /// An upsert probability lies outside `(0, 1]`.
    BadProbability {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
        /// The rejected probability.
        p: f64,
    },
    /// A delete references an edge absent from the merged view.
    MissingEdge {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
    /// Two mutations in one batch share a canonical endpoint pair.
    DuplicateInBatch {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
            DeltaError::OutOfRange { node, n } => {
                write!(f, "node {node} out of range for n = {n}")
            }
            DeltaError::BadProbability { u, v, p } => {
                write!(f, "edge ({u}, {v}) probability {p} outside (0, 1]")
            }
            DeltaError::MissingEdge { u, v } => {
                write!(f, "cannot delete absent edge ({u}, {v})")
            }
            DeltaError::DuplicateInBatch { u, v } => {
                write!(f, "duplicate mutation for edge ({u}, {v}) in one batch")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An immutable, `Arc`-shared view of a [`DeltaGraph`] at one generation.
///
/// Snapshots are what readers (estimator queries, the serving layer) hold:
/// they never change after creation, so a long-running query keyed to
/// generation `g` keeps computing against exactly generation `g` while the
/// writer moves on.
///
/// ```
/// use std::sync::Arc;
/// use ugraph::dynamic::DeltaGraph;
/// use ugraph::UncertainGraph;
///
/// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
/// let mut d = DeltaGraph::new(Arc::new(base));
/// let snap = d.snapshot();
/// assert_eq!(snap.generation(), 0);
/// assert_eq!(snap.graph().num_edges(), 1);
/// ```
#[derive(Debug)]
pub struct Snapshot {
    generation: u64,
    graph: Arc<UncertainGraph>,
}

impl Snapshot {
    /// The generation this snapshot was taken at.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// assert_eq!(DeltaGraph::new(Arc::new(g)).snapshot().generation(), 0);
    /// ```
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The materialized CSR uncertain graph of this generation.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.25)]);
    /// let snap = DeltaGraph::new(Arc::new(g)).snapshot();
    /// assert_eq!(snap.graph().edge_prob(1, 2), Some(0.25));
    /// ```
    #[inline]
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// The snapshot's graph as a shareable `Arc` (generation-0 snapshots and
    /// snapshots taken right after a compaction share the base allocation).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = Arc::new(UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]));
    /// let mut d = DeltaGraph::new(Arc::clone(&base));
    /// assert!(Arc::ptr_eq(&d.snapshot().shared_graph(), &base));
    /// ```
    #[inline]
    pub fn shared_graph(&self) -> Arc<UncertainGraph> {
        Arc::clone(&self.graph)
    }
}

/// A mutable uncertain graph: an immutable CSR base plus a sorted mutation
/// overlay, versioned by a monotonically increasing generation.
///
/// See the [module docs](self) for the read/write/compaction contract.
///
/// ```
/// use std::sync::Arc;
/// use ugraph::dynamic::DeltaGraph;
/// use ugraph::UncertainGraph;
///
/// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.4), (1, 2, 0.7)]);
/// let mut d = DeltaGraph::new(Arc::new(base));
/// d.upsert_edge(0, 2, 0.9).unwrap(); // insert
/// d.upsert_edge(0, 1, 0.5).unwrap(); // re-weight
/// d.delete_edge(1, 2).unwrap();
/// assert_eq!(d.num_edges(), 2);
/// assert_eq!(d.generation(), 3);
/// assert_eq!(d.edge_prob(0, 1), Some(0.5));
/// assert_eq!(d.edge_prob(1, 2), None);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<UncertainGraph>,
    /// Canonical `(u < v)` → `Some(p)` (insert / re-weight) or `None`
    /// (delete of a base edge). Entries that would be no-ops against the
    /// base (delete of an overlay-only insert) are removed outright.
    overlay: BTreeMap<(NodeId, NodeId), Option<f64>>,
    /// Per-node mirror of `overlay` with **both** orientations, so one
    /// `range((v, 0)..)` scan yields node `v`'s overlay row in sorted order.
    overlay_adj: BTreeMap<(NodeId, NodeId), Option<f64>>,
    n: usize,
    m: usize,
    generation: u64,
    compactions: u64,
    compact_fraction: f64,
    cached: Option<Arc<Snapshot>>,
}

/// Overlay size floor below which auto-compaction never triggers: tiny
/// graphs would otherwise compact on every batch, defeating the overlay.
const COMPACT_MIN_OVERLAY: usize = 16;

impl DeltaGraph {
    /// Wraps an immutable base graph at generation 0 with an empty overlay.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 1.0)]);
    /// let d = DeltaGraph::new(Arc::new(base));
    /// assert_eq!((d.num_nodes(), d.num_edges(), d.generation()), (2, 1, 0));
    /// ```
    pub fn new(base: Arc<UncertainGraph>) -> Self {
        let n = base.num_nodes();
        let m = base.num_edges();
        DeltaGraph {
            base,
            overlay: BTreeMap::new(),
            overlay_adj: BTreeMap::new(),
            n,
            m,
            generation: 0,
            compactions: 0,
            compact_fraction: 0.25,
            cached: None,
        }
    }

    /// Convenience constructor taking the base by value.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 1.0)]);
    /// assert_eq!(DeltaGraph::from_graph(base).num_edges(), 1);
    /// ```
    pub fn from_graph(base: UncertainGraph) -> Self {
        DeltaGraph::new(Arc::new(base))
    }

    /// Sets the auto-compaction threshold: after a batch, if the overlay
    /// holds more than `fraction * base_edges` entries (and at least a small
    /// fixed floor), the overlay is compacted into a fresh base CSR.
    /// Default 0.25.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 1.0)]);
    /// let d = DeltaGraph::from_graph(base).with_compact_fraction(0.5);
    /// assert_eq!(d.compactions(), 0);
    /// ```
    pub fn with_compact_fraction(mut self, fraction: f64) -> Self {
        self.compact_fraction = fraction.max(0.0);
        self
    }

    /// Seeds the generation counter, for restoring a graph from durable
    /// storage: a checkpoint taken at generation `g` must resume counting
    /// from `g`, not restart at 0, so clients never observe a generation
    /// moving backwards across a restart.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 1.0)]);
    /// let mut d = DeltaGraph::from_graph(base).with_generation(41);
    /// d.upsert_edge(0, 1, 0.5).unwrap();
    /// assert_eq!(d.generation(), 42);
    /// ```
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Node count of the merged view.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5)]);
    /// assert_eq!(DeltaGraph::from_graph(base).num_nodes(), 3);
    /// ```
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Edge count of the merged view.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.upsert_edge(1, 2, 0.5).unwrap();
    /// assert_eq!(d.num_edges(), 2);
    /// ```
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// The current generation: bumped by every successful mutation batch,
    /// never by reads or compaction.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.upsert_edge(0, 1, 0.6).unwrap();
    /// assert_eq!(d.generation(), 1);
    /// ```
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live overlay entries (0 right after a compaction).
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.upsert_edge(1, 2, 0.5).unwrap();
    /// assert_eq!(d.overlay_len(), 1);
    /// d.compact();
    /// assert_eq!(d.overlay_len(), 0);
    /// ```
    #[inline]
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// How many times the overlay has been compacted into a fresh base.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.compact(); // empty overlay: a no-op
    /// assert_eq!(d.compactions(), 0);
    /// ```
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The immutable base the overlay is layered over (changes only on
    /// compaction).
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let d = DeltaGraph::from_graph(base);
    /// assert_eq!(d.base().num_edges(), 1);
    /// ```
    #[inline]
    pub fn base(&self) -> &Arc<UncertainGraph> {
        &self.base
    }

    /// Probability of edge `(u, v)` in the merged view, if present.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.upsert_edge(1, 2, 0.75).unwrap();
    /// assert_eq!(d.edge_prob(2, 1), Some(0.75));
    /// assert_eq!(d.edge_prob(0, 2), None);
    /// ```
    pub fn edge_prob(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let key = if u < v { (u, v) } else { (v, u) };
        match self.overlay.get(&key) {
            Some(&Some(p)) => Some(p),
            Some(&None) => None,
            None => self.base.edge_prob(key.0, key.1),
        }
    }

    /// Whether edge `(u, v)` exists in the merged view.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// assert!(d.has_edge(0, 1));
    /// d.delete_edge(0, 1).unwrap();
    /// assert!(!d.has_edge(0, 1));
    /// ```
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_prob(u, v).is_some()
    }

    /// Degree of `v` in the merged view (counts the merged row).
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (0, 2, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.delete_edge(0, 2).unwrap();
    /// assert_eq!(d.degree(0), 1);
    /// ```
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors_with_probs(v).count()
    }

    /// Iterates node `v`'s merged row as sorted `(neighbor, probability)`
    /// pairs — the same contract as
    /// [`UncertainGraph::neighbors_with_probs`], computed as a two-pointer
    /// merge of the base CSR row with the overlay row (no materialization).
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (0, 2, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.upsert_edge(0, 1, 0.9).unwrap(); // re-weight
    /// d.delete_edge(0, 2).unwrap();
    /// let row: Vec<(u32, f64)> = d.neighbors_with_probs(0).collect();
    /// assert_eq!(row, vec![(1, 0.9)]);
    /// ```
    pub fn neighbors_with_probs(&self, v: NodeId) -> MergedNeighbors<'_> {
        let (base_nbrs, base_probs) = if (v as usize) < self.base.num_nodes() {
            self.base.neighbors_with_probs(v)
        } else {
            (&[][..], &[][..])
        };
        MergedNeighbors {
            base_nbrs,
            base_probs,
            i: 0,
            overlay: self.overlay_adj.range((v, 0)..=(v, NodeId::MAX)).peekable(),
        }
    }

    /// Applies one transactional mutation batch: everything is validated
    /// against the pre-batch state first, then committed and stamped with
    /// the next generation. On error nothing changes — not even the
    /// generation. An **empty** batch (no nodes, no edges) is a no-op and
    /// does not bump the generation. Auto-compacts afterwards if the
    /// overlay outgrew the configured base fraction.
    ///
    /// ```
    /// use ugraph::dynamic::{DeltaGraph, EdgeMutation, MutationBatch};
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// let stats = d
    ///     .apply(&MutationBatch {
    ///         add_nodes: 1,
    ///         edges: vec![EdgeMutation::Upsert(1, 2, 0.8), EdgeMutation::Delete(0, 1)],
    ///     })
    ///     .unwrap();
    /// assert_eq!((stats.inserted, stats.deleted, stats.nodes_added), (1, 1, 1));
    /// assert_eq!((d.num_nodes(), d.num_edges(), d.generation()), (3, 1, 1));
    /// ```
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<ApplyStats, DeltaError> {
        // An empty batch is a no-op, not a new version: bumping the
        // generation here would invalidate every cached answer for the
        // dataset without changing a single byte of it.
        if batch.add_nodes == 0 && batch.edges.is_empty() {
            return Ok(ApplyStats::default());
        }
        let n_after = self.n + batch.add_nodes;
        // Validate the full batch against the pre-batch merged state. Keys
        // are unique within a batch, so per-mutation validation against the
        // unmodified state is exact.
        let mut keys = std::collections::HashSet::with_capacity(batch.edges.len());
        let mut stats = ApplyStats {
            nodes_added: batch.add_nodes,
            ..ApplyStats::default()
        };
        for mutation in &batch.edges {
            let (u, v) = mutation.key();
            if u == v {
                return Err(DeltaError::SelfLoop(u));
            }
            if (v as usize) >= n_after {
                return Err(DeltaError::OutOfRange {
                    node: v,
                    n: n_after,
                });
            }
            if !keys.insert((u, v)) {
                return Err(DeltaError::DuplicateInBatch { u, v });
            }
            match *mutation {
                EdgeMutation::Upsert(_, _, p) => {
                    if !(p > 0.0 && p <= 1.0) {
                        return Err(DeltaError::BadProbability { u, v, p });
                    }
                    if self.has_edge(u, v) {
                        stats.reweighted += 1;
                    } else {
                        stats.inserted += 1;
                    }
                }
                EdgeMutation::Delete(_, _) => {
                    if !self.has_edge(u, v) {
                        return Err(DeltaError::MissingEdge { u, v });
                    }
                    stats.deleted += 1;
                }
            }
        }
        // Commit.
        self.n = n_after;
        for mutation in &batch.edges {
            let (u, v) = mutation.key();
            let in_base = self.base.edge_prob(u, v).is_some();
            match *mutation {
                EdgeMutation::Upsert(_, _, p) => self.set_overlay(u, v, Some(p)),
                EdgeMutation::Delete(_, _) => {
                    if in_base {
                        self.set_overlay(u, v, None);
                    } else {
                        // Deleting an overlay-only insert reverts to absent,
                        // which is what no entry already means.
                        self.remove_overlay(u, v);
                    }
                }
            }
        }
        self.m = self.m + stats.inserted - stats.deleted;
        self.generation += 1;
        self.cached = None;
        if self.overlay.len() > self.compact_limit() {
            self.compact();
        }
        Ok(stats)
    }

    /// Single-edge convenience over [`DeltaGraph::apply`]: insert or
    /// re-weight `(u, v)` to `p` (one generation bump).
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// assert!(d.upsert_edge(0, 1, 2.0).is_err()); // bad probability
    /// assert_eq!(d.generation(), 0); // rejected batches do not bump
    /// ```
    pub fn upsert_edge(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<ApplyStats, DeltaError> {
        self.apply(&MutationBatch {
            add_nodes: 0,
            edges: vec![EdgeMutation::Upsert(u, v, p)],
        })
    }

    /// Single-edge convenience over [`DeltaGraph::apply`]: delete `(u, v)`
    /// (one generation bump).
    ///
    /// ```
    /// use ugraph::dynamic::{DeltaError, DeltaGraph};
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// assert_eq!(
    ///     d.delete_edge(0, 1).map(|s| s.deleted),
    ///     Ok(1)
    /// );
    /// assert_eq!(d.delete_edge(0, 1), Err(DeltaError::MissingEdge { u: 0, v: 1 }));
    /// ```
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<ApplyStats, DeltaError> {
        self.apply(&MutationBatch {
            add_nodes: 0,
            edges: vec![EdgeMutation::Delete(u, v)],
        })
    }

    /// Appends `count` isolated nodes (one generation bump); returns the id
    /// of the first new node.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// assert_eq!(d.add_nodes(3).unwrap(), 2);
    /// assert_eq!(d.num_nodes(), 5);
    /// ```
    pub fn add_nodes(&mut self, count: usize) -> Result<NodeId, DeltaError> {
        let first = self.n as NodeId;
        self.apply(&MutationBatch {
            add_nodes: count,
            edges: Vec::new(),
        })?;
        Ok(first)
    }

    /// The current immutable snapshot: materialized (merged base + overlay,
    /// assembled into a fresh CSR) on the first call after a mutation batch,
    /// then shared by `Arc` — repeated calls at the same generation are one
    /// `Arc::clone`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.4)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// let a = d.snapshot();
    /// let b = d.snapshot();
    /// assert!(Arc::ptr_eq(&a, &b)); // same generation, same allocation
    /// d.upsert_edge(1, 2, 0.5).unwrap();
    /// let c = d.snapshot();
    /// assert_eq!(c.generation(), 1);
    /// assert_eq!(c.graph().num_edges(), 2);
    /// assert_eq!(a.graph().num_edges(), 1); // old snapshot untouched
    /// ```
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        if let Some(cached) = &self.cached {
            return Arc::clone(cached);
        }
        // An overlay-free view at the base node count IS the base: share the
        // allocation instead of rebuilding it (generation 0, post-compaction).
        let graph = if self.overlay.is_empty() && self.n == self.base.num_nodes() {
            Arc::clone(&self.base)
        } else {
            let (edges, probs) = self.merged_edges();
            let graph = Graph::assemble(self.n, edges, Vec::new(), Vec::new(), Vec::new());
            Arc::new(UncertainGraph::new(graph, probs))
        };
        let snap = Arc::new(Snapshot {
            generation: self.generation,
            graph,
        });
        self.cached = Some(Arc::clone(&snap));
        snap
    }

    /// Compacts the overlay into a fresh immutable base CSR (rebuilt through
    /// [`GraphBuilder`], re-validating every merged edge) and drains the
    /// overlay. The merged view — and the generation — are unchanged; only
    /// the representation moves. No-op on an empty overlay unless nodes were
    /// added.
    ///
    /// ```
    /// use ugraph::dynamic::DeltaGraph;
    /// use ugraph::UncertainGraph;
    /// let base = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.4), (1, 2, 0.6)]);
    /// let mut d = DeltaGraph::from_graph(base);
    /// d.delete_edge(0, 1).unwrap();
    /// d.upsert_edge(0, 2, 0.9).unwrap();
    /// let before: Vec<(u32, f64)> = d.neighbors_with_probs(2).collect();
    /// d.compact();
    /// assert_eq!(d.overlay_len(), 0);
    /// assert_eq!(d.compactions(), 1);
    /// let after: Vec<(u32, f64)> = d.neighbors_with_probs(2).collect();
    /// assert_eq!(before, after);
    /// ```
    pub fn compact(&mut self) {
        if self.overlay.is_empty() && self.n == self.base.num_nodes() {
            return;
        }
        let (edges, probs) = self.merged_edges();
        let mut b = GraphBuilder::new(self.n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        // GraphBuilder sorts into the same canonical order the merge
        // produced, so `probs` stays parallel to the built edge list.
        self.base = Arc::new(UncertainGraph::new(b.build(), probs));
        self.overlay.clear();
        self.overlay_adj.clear();
        self.compactions += 1;
    }

    /// Overlay entry count above which [`DeltaGraph::apply`] auto-compacts.
    fn compact_limit(&self) -> usize {
        let scaled = (self.compact_fraction * self.base.num_edges() as f64).ceil() as usize;
        scaled.max(COMPACT_MIN_OVERLAY)
    }

    /// The merged canonical edge list + parallel probabilities, sorted —
    /// a linear merge of the (sorted) base edge list with the (sorted)
    /// overlay: `O(m + Δ)`, no re-sort.
    fn merged_edges(&self) -> (Vec<(NodeId, NodeId)>, Vec<f64>) {
        let base_edges = self.base.graph().edges();
        let base_probs = self.base.probs();
        let mut edges = Vec::with_capacity(self.m);
        let mut probs = Vec::with_capacity(self.m);
        let mut ov = self.overlay.iter().peekable();
        let mut i = 0;
        loop {
            match (base_edges.get(i), ov.peek()) {
                (Some(&be), Some(&(&oe, &op))) => {
                    if be < oe {
                        edges.push(be);
                        probs.push(base_probs[i]);
                        i += 1;
                    } else if be == oe {
                        if let Some(p) = op {
                            edges.push(oe);
                            probs.push(p);
                        }
                        i += 1;
                        ov.next();
                    } else {
                        if let Some(p) = op {
                            edges.push(oe);
                            probs.push(p);
                        }
                        ov.next();
                    }
                }
                (Some(&be), None) => {
                    edges.push(be);
                    probs.push(base_probs[i]);
                    i += 1;
                }
                (None, Some(&(&oe, &op))) => {
                    if let Some(p) = op {
                        edges.push(oe);
                        probs.push(p);
                    }
                    ov.next();
                }
                (None, None) => break,
            }
        }
        (edges, probs)
    }

    fn set_overlay(&mut self, u: NodeId, v: NodeId, p: Option<f64>) {
        self.overlay.insert((u, v), p);
        self.overlay_adj.insert((u, v), p);
        self.overlay_adj.insert((v, u), p);
    }

    fn remove_overlay(&mut self, u: NodeId, v: NodeId) {
        self.overlay.remove(&(u, v));
        self.overlay_adj.remove(&(u, v));
        self.overlay_adj.remove(&(v, u));
    }
}

/// Sorted `(neighbor, probability)` iterator over one merged row of a
/// [`DeltaGraph`] (see [`DeltaGraph::neighbors_with_probs`]).
#[derive(Debug)]
pub struct MergedNeighbors<'a> {
    base_nbrs: &'a [NodeId],
    base_probs: &'a [f64],
    i: usize,
    overlay: std::iter::Peekable<btree_map::Range<'a, (NodeId, NodeId), Option<f64>>>,
}

impl Iterator for MergedNeighbors<'_> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<(NodeId, f64)> {
        loop {
            match (self.base_nbrs.get(self.i), self.overlay.peek()) {
                (Some(&w), Some(&(&(_, ow), &op))) => {
                    if w < ow {
                        self.i += 1;
                        return Some((w, self.base_probs[self.i - 1]));
                    }
                    self.overlay.next();
                    if w == ow {
                        self.i += 1;
                    }
                    if let Some(p) = op {
                        return Some((ow, p));
                    }
                    // Deleted base edge: skip and keep merging.
                }
                (Some(&w), None) => {
                    self.i += 1;
                    return Some((w, self.base_probs[self.i - 1]));
                }
                (None, Some(&(&(_, ow), &op))) => {
                    self.overlay.next();
                    if let Some(p) = op {
                        return Some((ow, p));
                    }
                }
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base3() -> Arc<UncertainGraph> {
        Arc::new(UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.4), (0, 2, 0.4), (1, 3, 0.7)],
        ))
    }

    /// Rebuild-from-scratch reference for the merged view.
    fn reference(d: &DeltaGraph) -> UncertainGraph {
        let mut weighted = Vec::new();
        for v in 0..d.num_nodes() as NodeId {
            for (w, p) in d.neighbors_with_probs(v) {
                if v < w {
                    weighted.push((v, w, p));
                }
            }
        }
        UncertainGraph::from_weighted_edges(d.num_nodes(), &weighted)
    }

    fn assert_matches_snapshot(d: &mut DeltaGraph) {
        let reference = reference(d);
        let snap = d.snapshot();
        assert_eq!(snap.graph().graph().edges(), reference.graph().edges());
        assert_eq!(snap.graph().probs(), reference.probs());
        assert_eq!(snap.graph().num_nodes(), reference.num_nodes());
        assert_eq!(d.num_edges(), snap.graph().num_edges());
        for v in 0..d.num_nodes() as NodeId {
            assert_eq!(d.degree(v), snap.graph().graph().degree(v), "node {v}");
        }
    }

    #[test]
    fn upsert_delete_reweight_roundtrip() {
        let mut d = DeltaGraph::new(base3());
        d.upsert_edge(2, 3, 0.9).unwrap();
        d.upsert_edge(0, 1, 0.5).unwrap();
        d.delete_edge(0, 2).unwrap();
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.generation(), 3);
        assert_eq!(d.edge_prob(0, 1), Some(0.5));
        assert_eq!(d.edge_prob(0, 2), None);
        assert_eq!(d.edge_prob(2, 3), Some(0.9));
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn insert_then_delete_leaves_no_overlay_residue() {
        let mut d = DeltaGraph::new(base3());
        d.upsert_edge(2, 3, 0.9).unwrap();
        assert_eq!(d.overlay_len(), 1);
        d.delete_edge(2, 3).unwrap();
        assert_eq!(d.overlay_len(), 0, "overlay-only insert + delete cancels");
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.generation(), 2, "both batches still bump");
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn delete_then_reinsert_base_edge() {
        let mut d = DeltaGraph::new(base3());
        d.delete_edge(0, 1).unwrap();
        assert!(!d.has_edge(0, 1));
        d.upsert_edge(0, 1, 0.2).unwrap();
        assert_eq!(d.edge_prob(0, 1), Some(0.2));
        assert_eq!(d.num_edges(), 3);
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn empty_batch_is_a_no_op_and_does_not_bump() {
        let mut d = DeltaGraph::new(base3());
        let s0 = d.snapshot();
        let stats = d.apply(&MutationBatch::default()).unwrap();
        assert_eq!(stats, ApplyStats::default());
        assert_eq!(d.generation(), 0, "a no-op must not invalidate caches");
        assert!(Arc::ptr_eq(&s0, &d.snapshot()));
    }

    #[test]
    fn batch_is_transactional() {
        let mut d = DeltaGraph::new(base3());
        let err = d
            .apply(&MutationBatch {
                add_nodes: 0,
                edges: vec![
                    EdgeMutation::Upsert(2, 3, 0.5),
                    EdgeMutation::Delete(1, 2), // absent: whole batch must fail
                ],
            })
            .unwrap_err();
        assert_eq!(err, DeltaError::MissingEdge { u: 1, v: 2 });
        assert_eq!(d.generation(), 0);
        assert_eq!(d.overlay_len(), 0);
        assert!(!d.has_edge(2, 3));
    }

    #[test]
    fn batch_rejects_duplicates_self_loops_and_ranges() {
        let mut d = DeltaGraph::new(base3());
        let dup = d.apply(&MutationBatch {
            add_nodes: 0,
            edges: vec![EdgeMutation::Upsert(2, 3, 0.5), EdgeMutation::Delete(3, 2)],
        });
        assert_eq!(dup, Err(DeltaError::DuplicateInBatch { u: 2, v: 3 }));
        assert_eq!(d.upsert_edge(1, 1, 0.5), Err(DeltaError::SelfLoop(1)),);
        assert_eq!(
            d.upsert_edge(0, 9, 0.5),
            Err(DeltaError::OutOfRange { node: 9, n: 4 }),
        );
        assert_eq!(
            d.upsert_edge(0, 3, 0.0),
            Err(DeltaError::BadProbability { u: 0, v: 3, p: 0.0 }),
        );
        assert_eq!(d.generation(), 0);
    }

    #[test]
    fn add_nodes_and_edges_to_them() {
        let mut d = DeltaGraph::new(base3());
        let stats = d
            .apply(&MutationBatch {
                add_nodes: 2,
                edges: vec![
                    EdgeMutation::Upsert(3, 4, 0.6),
                    EdgeMutation::Upsert(4, 5, 0.3),
                ],
            })
            .unwrap();
        assert_eq!(stats.inserted, 2);
        assert_eq!(stats.nodes_added, 2);
        assert_eq!(d.num_nodes(), 6);
        assert_eq!(d.num_edges(), 5);
        let row: Vec<(NodeId, f64)> = d.neighbors_with_probs(4).collect();
        assert_eq!(row, vec![(3, 0.6), (5, 0.3)]);
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn merged_rows_are_sorted_under_interleaving() {
        // Base row of node 0 is [1, 2]; overlay inserts 3 and 5, deletes 2,
        // re-weights 1: merged row must come out sorted with correct probs.
        let mut d = DeltaGraph::new(Arc::new(UncertainGraph::from_weighted_edges(
            6,
            &[(0, 1, 0.1), (0, 2, 0.2)],
        )));
        d.apply(&MutationBatch {
            add_nodes: 0,
            edges: vec![
                EdgeMutation::Upsert(0, 5, 0.5),
                EdgeMutation::Upsert(0, 3, 0.3),
                EdgeMutation::Delete(0, 2),
                EdgeMutation::Upsert(0, 1, 0.9),
            ],
        })
        .unwrap();
        let row: Vec<(NodeId, f64)> = d.neighbors_with_probs(0).collect();
        assert_eq!(row, vec![(1, 0.9), (3, 0.3), (5, 0.5)]);
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn compaction_preserves_view_and_drains_overlay() {
        let mut d = DeltaGraph::new(base3());
        d.upsert_edge(2, 3, 0.9).unwrap();
        d.delete_edge(0, 1).unwrap();
        let before = reference(&d);
        let gen = d.generation();
        d.compact();
        assert_eq!(d.overlay_len(), 0);
        assert_eq!(d.compactions(), 1);
        assert_eq!(d.generation(), gen, "compaction is not a mutation");
        let after = reference(&d);
        assert_eq!(before.graph().edges(), after.graph().edges());
        assert_eq!(before.probs(), after.probs());
        assert_eq!(d.base().num_edges(), d.num_edges());
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn auto_compaction_triggers_past_the_fraction() {
        // 20-edge path base, fraction 0.5 → limit max(16, 10) = 16: the 17th
        // overlay entry triggers compaction.
        let edges: Vec<(NodeId, NodeId, f64)> = (0..20)
            .map(|i| (i as NodeId, i as NodeId + 1, 0.5))
            .collect();
        let base = UncertainGraph::from_weighted_edges(21, &edges);
        let mut d = DeltaGraph::from_graph(base).with_compact_fraction(0.5);
        for i in 0..17u32 {
            d.upsert_edge(i, i + 1, 0.25).unwrap();
        }
        assert_eq!(d.compactions(), 1);
        assert_eq!(d.overlay_len(), 0);
        assert_eq!(d.generation(), 17);
        assert_eq!(d.edge_prob(3, 4), Some(0.25));
        assert_matches_snapshot(&mut d);
    }

    #[test]
    fn snapshots_are_immutable_and_generation_stamped() {
        let mut d = DeltaGraph::new(base3());
        let s0 = d.snapshot();
        d.upsert_edge(2, 3, 0.9).unwrap();
        let s1 = d.snapshot();
        assert_eq!(s0.generation(), 0);
        assert_eq!(s1.generation(), 1);
        assert_eq!(s0.graph().num_edges(), 3);
        assert_eq!(s1.graph().num_edges(), 4);
        // Old snapshot keeps serving its generation.
        assert_eq!(s0.graph().edge_prob(2, 3), None);
    }
}
