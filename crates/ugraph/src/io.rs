//! Reading and writing uncertain graphs.
//!
//! Two formats:
//!
//! * **Weighted edge lists** — the format the paper's public datasets ship
//!   in: one `u v p` triple per line, `#`-comments and blank lines ignored.
//!   Node ids may be arbitrary `u32`s; they are compacted to `0..n` with the
//!   mapping returned to the caller.
//! * **Serde JSON** — lossless round-trip of [`UncertainGraph`] (the type
//!   derives `Serialize`/`Deserialize`), used for experiment checkpoints.
//! * **Mutation files** — one mutation per line against a live
//!   [`DeltaGraph`]: `u v p` inserts or re-weights the edge, `u v -`
//!   deletes it ([`read_edge_list_delta`] / [`apply_edge_list_delta`]).
//!   Same comment/whitespace/probability rules as weighted edge lists;
//!   duplicate edge keys within one batch are rejected with the offending
//!   line number.

use crate::dynamic::{ApplyStats, DeltaGraph, EdgeMutation, MutationBatch};
use crate::graph::NodeId;
use crate::uncertain::UncertainGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// `(line number, message)`.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// One parsed line shared by both the edge-list and the mutation grammar:
/// endpoints (validated against self-loops) plus the action field —
/// `Some(p)` for a probability (validated against `(0, 1]`), `None` for the
/// delete marker `-` (only legal when `allow_delete`).
fn parse_edge_line(
    lineno: usize,
    line: &str,
    allow_delete: bool,
) -> Result<(u32, u32, Option<f64>), IoError> {
    let mut it = line.split_whitespace();
    let mut field = |name: &str| {
        it.next()
            .ok_or_else(|| IoError::Parse(lineno, format!("missing {name}")))
    };
    let u: u32 = field("source")?
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad source: {e}")))?;
    let v: u32 = field("target")?
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad target: {e}")))?;
    if u == v {
        return Err(IoError::Parse(lineno, format!("self-loop on node {u}")));
    }
    let raw = field("probability")?;
    if allow_delete && raw == "-" {
        return Ok((u, v, None));
    }
    let p: f64 = raw
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad probability: {e}")))?;
    if !(p > 0.0 && p <= 1.0) {
        return Err(IoError::Parse(
            lineno,
            format!("probability {p} outside (0, 1]"),
        ));
    }
    Ok((u, v, Some(p)))
}

/// Parses a weighted edge list (`u v p` per line). Returns the graph plus
/// the original label of every compacted node id.
///
/// Duplicate edges keep the *last* probability seen; self-loops are rejected.
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<(UncertainGraph, Vec<u32>), IoError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u32> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut edges: std::collections::BTreeMap<(NodeId, NodeId), f64> =
        std::collections::BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (u, v, p) = parse_edge_line(lineno, line, false)?;
        let p = p.expect("allow_delete = false always yields a probability");
        let mut id = |label: u32| -> NodeId {
            *index_of.entry(label).or_insert_with(|| {
                labels.push(label);
                (labels.len() - 1) as NodeId
            })
        };
        let (a, b) = (id(u), id(v));
        let key = if a < b { (a, b) } else { (b, a) };
        edges.insert(key, p);
    }
    let weighted: Vec<(NodeId, NodeId, f64)> =
        edges.into_iter().map(|((u, v), p)| (u, v, p)).collect();
    let g = UncertainGraph::from_weighted_edges(labels.len(), &weighted);
    Ok((g, labels))
}

/// A mutation in original-label space: `(u, v, Some(p))` inserts or
/// re-weights the edge, `(u, v, None)` deletes it.
pub type LabeledMutation = (u32, u32, Option<f64>);

/// Parses a mutation file (`u v p` upsert / `u v -` delete per line) with
/// line numbers attached — the shared path behind [`read_edge_list_delta`]
/// and [`apply_edge_list_delta`].
fn parse_delta_lines<R: Read>(reader: R) -> Result<Vec<(usize, LabeledMutation)>, IoError> {
    let reader = BufReader::new(reader);
    let mut out: Vec<(usize, LabeledMutation)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (u, v, action) = parse_edge_line(lineno, line, true)?;
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            return Err(IoError::Parse(
                lineno,
                format!("duplicate edge ({u}, {v}) in one mutation batch"),
            ));
        }
        out.push((lineno, (u, v, action)));
    }
    Ok(out)
}

/// Reads a mutation file: one `u v p` (insert / re-weight) or `u v -`
/// (delete) per line, `#`-comments and blank lines ignored, node ids in
/// original-label space. Self-loops, out-of-range probabilities, and
/// duplicate edge keys within the batch are rejected with the offending
/// line number.
///
/// ```
/// use ugraph::io::read_edge_list_delta;
/// let muts = read_edge_list_delta("# delta\n1 2 0.5\n3 1 -\n".as_bytes()).unwrap();
/// assert_eq!(muts, vec![(1, 2, Some(0.5)), (3, 1, None)]);
/// assert!(read_edge_list_delta("1 2 0.5\n2 1 -\n".as_bytes()).is_err()); // dup key
/// ```
pub fn read_edge_list_delta<R: Read>(reader: R) -> Result<Vec<LabeledMutation>, IoError> {
    Ok(parse_delta_lines(reader)?
        .into_iter()
        .map(|(_, m)| m)
        .collect())
}

/// What [`apply_edge_list_delta`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaApplied {
    /// Per-kind mutation counts.
    pub stats: ApplyStats,
    /// The generation the graph is at after the batch.
    pub generation: u64,
}

/// Applies a mutation file to a live [`DeltaGraph`] as **one atomic batch**:
/// the whole file is parsed and label-resolved first, so any error (bad
/// line, duplicate key, unknown label on a delete, delete of an absent
/// edge) leaves the graph — and its generation — untouched.
///
/// `labels` maps compact node ids to original labels (one entry per node;
/// identity-labeled graphs pass `(0..n).collect()`); labels never seen
/// before allocate new nodes and are appended on success.
///
/// ```
/// use ugraph::dynamic::DeltaGraph;
/// use ugraph::io::apply_edge_list_delta;
/// use ugraph::UncertainGraph;
///
/// // Labels 10 and 20 are nodes 0 and 1.
/// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
/// let mut d = DeltaGraph::from_graph(base);
/// let mut labels = vec![10, 20];
/// let done = apply_edge_list_delta(&mut d, &mut labels, "10 20 0.9\n20 30 0.4\n".as_bytes())
///     .unwrap();
/// assert_eq!((done.stats.reweighted, done.stats.inserted), (1, 1));
/// assert_eq!(done.generation, 1);
/// assert_eq!(labels, vec![10, 20, 30]); // label 30 became node 2
/// assert_eq!(d.edge_prob(1, 2), Some(0.4));
/// ```
pub fn apply_edge_list_delta<R: Read>(
    delta: &mut DeltaGraph,
    labels: &mut Vec<u32>,
    reader: R,
) -> Result<DeltaApplied, IoError> {
    assert_eq!(
        labels.len(),
        delta.num_nodes(),
        "labels must carry one entry per node"
    );
    let parsed = parse_delta_lines(reader)?;
    let mut index_of: std::collections::HashMap<u32, NodeId> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i as NodeId))
        .collect();
    let mut new_labels: Vec<u32> = Vec::new();
    let mut edges = Vec::with_capacity(parsed.len());
    let n0 = delta.num_nodes();
    for (lineno, (lu, lv, action)) in parsed {
        let mut resolve = |label: u32, deleting: bool| -> Result<NodeId, IoError> {
            if let Some(&id) = index_of.get(&label) {
                return Ok(id);
            }
            if deleting {
                return Err(IoError::Parse(
                    lineno,
                    format!("unknown node label {label} in delete"),
                ));
            }
            let id = (n0 + new_labels.len()) as NodeId;
            new_labels.push(label);
            index_of.insert(label, id);
            Ok(id)
        };
        let deleting = action.is_none();
        let u = resolve(lu, deleting)?;
        let v = resolve(lv, deleting)?;
        match action {
            Some(p) => edges.push(EdgeMutation::Upsert(u, v, p)),
            None => {
                if !delta.has_edge(u, v) {
                    return Err(IoError::Parse(
                        lineno,
                        format!("cannot delete absent edge ({lu}, {lv})"),
                    ));
                }
                edges.push(EdgeMutation::Delete(u, v));
            }
        }
    }
    let batch = MutationBatch {
        add_nodes: new_labels.len(),
        edges,
    };
    // Everything above validated against the pre-batch state (keys are
    // unique within the batch, so that is exact); `apply` re-checks and can
    // only fail on an internal inconsistency.
    let stats = delta
        .apply(&batch)
        .map_err(|e| IoError::Parse(0, e.to_string()))?;
    labels.extend(new_labels);
    Ok(DeltaApplied {
        stats,
        generation: delta.generation(),
    })
}

/// Writes a weighted edge list (`u v p` per line), using `labels` to map
/// compact ids back to original labels (pass `None` for identity).
pub fn write_weighted_edge_list<W: Write>(
    writer: W,
    g: &UncertainGraph,
    labels: Option<&[u32]>,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
        let (lu, lv) = match labels {
            Some(l) => (l[u as usize], l[v as usize]),
            None => (u, v),
        };
        writeln!(w, "{} {} {}", lu, lv, g.prob(i))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# a comment\n10 20 0.5\n20 30 0.25\n\n10 30 1.0\n";
        let (g, labels) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
        assert_eq!(g.edge_prob(0, 1), Some(0.5));
        assert_eq!(g.edge_prob(0, 2), Some(1.0));
    }

    #[test]
    fn duplicate_edges_keep_last() {
        let text = "1 2 0.3\n2 1 0.9\n";
        let (g, _) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_prob(0, 1), Some(0.9));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            read_weighted_edge_list("1 1 0.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 1.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 zebra".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        // Error display contains the line number.
        let err = read_weighted_edge_list("ok ok ok".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.25), (1, 2, 0.5), (2, 3, 0.75)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, labels) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(labels.len(), 4);
        assert_eq!(g2.num_edges(), 3);
        for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
            // Map original ids through labels to compare probabilities.
            let lu = labels.iter().position(|&l| l == u).unwrap() as NodeId;
            let lv = labels.iter().position(|&l| l == v).unwrap() as NodeId;
            assert_eq!(g2.edge_prob(lu, lv), Some(g.prob(i)));
        }
    }

    #[test]
    fn roundtrip_with_custom_labels() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, Some(&[100, 200])).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("100 200 0.5"));
    }

    #[test]
    fn delta_parse_grammar_and_duplicates() {
        let muts = read_edge_list_delta("# batch\n1 2 0.5\n\n2 3 -\n4 1 1.0\n".as_bytes()).unwrap();
        assert_eq!(
            muts,
            vec![(1, 2, Some(0.5)), (2, 3, None), (4, 1, Some(1.0))]
        );
        // Duplicate canonical keys are rejected with the offending line.
        let err = read_edge_list_delta("1 2 0.5\n# ok\n2 1 -\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("duplicate edge"), "{err}");
        // Shared validation path: same rules as weighted edge lists.
        assert!(matches!(
            read_edge_list_delta("1 1 0.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list_delta("1 2 1.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list_delta("1 2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        // `-` is only a delete marker in the probability position.
        assert!(read_edge_list_delta("- 2 0.5".as_bytes()).is_err());
    }

    #[test]
    fn delta_apply_maps_labels_and_allocates_nodes() {
        let (g, mut labels) =
            read_weighted_edge_list("10 20 0.5\n20 30 0.25\n".as_bytes()).unwrap();
        let mut d = crate::dynamic::DeltaGraph::from_graph(g);
        let done = apply_edge_list_delta(
            &mut d,
            &mut labels,
            "10 20 0.9\n10 30 0.3\n30 40 0.8\n20 30 -\n".as_bytes(),
        )
        .unwrap();
        assert_eq!(done.stats.reweighted, 1);
        assert_eq!(done.stats.inserted, 2);
        assert_eq!(done.stats.deleted, 1);
        assert_eq!(done.stats.nodes_added, 1);
        assert_eq!(done.generation, 1);
        assert_eq!(labels, vec![10, 20, 30, 40]);
        assert_eq!(d.edge_prob(0, 1), Some(0.9));
        assert_eq!(d.edge_prob(0, 2), Some(0.3));
        assert_eq!(d.edge_prob(2, 3), Some(0.8));
        assert_eq!(d.edge_prob(1, 2), None);
    }

    #[test]
    fn delta_apply_is_atomic_on_error() {
        let (g, mut labels) = read_weighted_edge_list("10 20 0.5\n".as_bytes()).unwrap();
        let mut d = crate::dynamic::DeltaGraph::from_graph(g);
        // Line 2 deletes an unknown label: nothing may change.
        let err = apply_edge_list_delta(&mut d, &mut labels, "10 20 0.9\n10 99 -\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("unknown node label 99"), "{err}");
        assert_eq!(d.generation(), 0);
        assert_eq!(d.edge_prob(0, 1), Some(0.5));
        assert_eq!(labels, vec![10, 20]);
        // Deleting a known-label but absent edge is also line-attributed.
        let mut more = labels.clone();
        let err =
            apply_edge_list_delta(&mut d, &mut more, "# no-op\n20 10 -\n10 20 -\n".as_bytes())
                .unwrap_err();
        // (duplicate key check fires first here, on line 3)
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = apply_edge_list_delta(&mut d, &mut more, "30 40 0.5\n10 20 -\n".as_bytes());
        assert!(err.is_ok(), "independent delete after inserts is fine");
        assert_eq!(d.generation(), 1);
        assert!(!d.has_edge(0, 1));
    }

    #[test]
    fn serde_json_roundtrip() {
        // UncertainGraph derives Serialize/Deserialize; verify a manual
        // field-level reconstruction (serde_json is not a dependency, so we
        // round-trip through the serde data model via the edge-list instead).
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 2, 0.4), (1, 2, 0.6)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, _) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
