//! Reading and writing uncertain graphs.
//!
//! Two formats:
//!
//! * **Weighted edge lists** — the format the paper's public datasets ship
//!   in: one `u v p` triple per line, `#`-comments and blank lines ignored.
//!   Node ids may be arbitrary `u32`s; they are compacted to `0..n` with the
//!   mapping returned to the caller.
//! * **Serde JSON** — lossless round-trip of [`UncertainGraph`] (the type
//!   derives `Serialize`/`Deserialize`), used for experiment checkpoints.
//! * **Mutation files** — one mutation per line against a live
//!   [`DeltaGraph`]: `u v p` inserts or re-weights the edge, `u v -`
//!   deletes it ([`read_edge_list_delta`] / [`apply_edge_list_delta`]).
//!   Same comment/whitespace/probability rules as weighted edge lists;
//!   duplicate edge keys within one batch are rejected with the offending
//!   line number. [`DeltaLines`] exposes the same grammar as a streaming
//!   iterator, so replaying a large log never buffers the whole file.
//! * **Binary checkpoints** — [`write_graph_checkpoint`] /
//!   [`read_graph_checkpoint`]: the materialized graph (edges + probability
//!   bits + labels + generation) in a fixed little-endian layout with a
//!   trailing [`crc32`], used by `mpds-store` for durable snapshots.

use crate::dynamic::{ApplyStats, DeltaGraph, EdgeMutation, MutationBatch};
use crate::graph::NodeId;
use crate::uncertain::UncertainGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// `(line number, message)`.
    Parse(usize, String),
    /// A binary checkpoint failed structural or CRC validation.
    Corrupt(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
            IoError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// One parsed line shared by both the edge-list and the mutation grammar:
/// endpoints (validated against self-loops) plus the action field —
/// `Some(p)` for a probability (validated against `(0, 1]`), `None` for the
/// delete marker `-` (only legal when `allow_delete`).
fn parse_edge_line(
    lineno: usize,
    line: &str,
    allow_delete: bool,
) -> Result<(u32, u32, Option<f64>), IoError> {
    let mut it = line.split_whitespace();
    let mut field = |name: &str| {
        it.next()
            .ok_or_else(|| IoError::Parse(lineno, format!("missing {name}")))
    };
    let u: u32 = field("source")?
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad source: {e}")))?;
    let v: u32 = field("target")?
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad target: {e}")))?;
    if u == v {
        return Err(IoError::Parse(lineno, format!("self-loop on node {u}")));
    }
    let raw = field("probability")?;
    if allow_delete && raw == "-" {
        return Ok((u, v, None));
    }
    let p: f64 = raw
        .parse()
        .map_err(|e| IoError::Parse(lineno, format!("bad probability: {e}")))?;
    if !(p > 0.0 && p <= 1.0) {
        return Err(IoError::Parse(
            lineno,
            format!("probability {p} outside (0, 1]"),
        ));
    }
    Ok((u, v, Some(p)))
}

/// Parses a weighted edge list (`u v p` per line). Returns the graph plus
/// the original label of every compacted node id.
///
/// Duplicate edges keep the *last* probability seen; self-loops are rejected.
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<(UncertainGraph, Vec<u32>), IoError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u32> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut edges: std::collections::BTreeMap<(NodeId, NodeId), f64> =
        std::collections::BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (u, v, p) = parse_edge_line(lineno, line, false)?;
        let p = p.expect("allow_delete = false always yields a probability");
        let mut id = |label: u32| -> NodeId {
            *index_of.entry(label).or_insert_with(|| {
                labels.push(label);
                (labels.len() - 1) as NodeId
            })
        };
        let (a, b) = (id(u), id(v));
        let key = if a < b { (a, b) } else { (b, a) };
        edges.insert(key, p);
    }
    let weighted: Vec<(NodeId, NodeId, f64)> =
        edges.into_iter().map(|((u, v), p)| (u, v, p)).collect();
    let g = UncertainGraph::from_weighted_edges(labels.len(), &weighted);
    Ok((g, labels))
}

/// A mutation in original-label space: `(u, v, Some(p))` inserts or
/// re-weights the edge, `(u, v, None)` deletes it.
pub type LabeledMutation = (u32, u32, Option<f64>);

/// Streaming parser over the mutation grammar: one `u v p` (insert /
/// re-weight) or `u v -` (delete) per line, `#`-comments and blank lines
/// skipped, yielding `(line number, mutation)` pairs as they are read —
/// nothing buffers the whole input, so WAL replay of a large log costs one
/// line of memory at a time.
///
/// Duplicate canonical edge keys within the stream are rejected with the
/// offending line number, exactly as [`read_edge_list_delta`] does. After
/// the first `Err` the iterator is fused (yields `None` forever).
///
/// ```
/// use std::io::BufReader;
/// use ugraph::io::DeltaLines;
/// let mut it = DeltaLines::new(BufReader::new("# d\n1 2 0.5\n3 1 -\n".as_bytes()));
/// assert_eq!(it.next().unwrap().unwrap(), (2, (1, 2, Some(0.5))));
/// assert_eq!(it.next().unwrap().unwrap(), (3, (3, 1, None)));
/// assert!(it.next().is_none());
/// ```
pub struct DeltaLines<R: BufRead> {
    lines: std::io::Lines<R>,
    lineno: usize,
    seen: std::collections::HashSet<(u32, u32)>,
    done: bool,
}

impl<R: BufRead> DeltaLines<R> {
    /// Starts streaming mutations from `reader` at line 1.
    pub fn new(reader: R) -> Self {
        DeltaLines {
            lines: reader.lines(),
            lineno: 0,
            seen: std::collections::HashSet::new(),
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for DeltaLines<R> {
    type Item = Result<(usize, LabeledMutation), IoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.lineno += 1;
            let line = match self.lines.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok(line)) => line,
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (u, v, action) = match parse_edge_line(self.lineno, line, true) {
                Ok(parsed) => parsed,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            let key = if u < v { (u, v) } else { (v, u) };
            if !self.seen.insert(key) {
                self.done = true;
                return Some(Err(IoError::Parse(
                    self.lineno,
                    format!("duplicate edge ({u}, {v}) in one mutation batch"),
                )));
            }
            return Some(Ok((self.lineno, (u, v, action))));
        }
    }
}

/// Reads a mutation file: one `u v p` (insert / re-weight) or `u v -`
/// (delete) per line, `#`-comments and blank lines ignored, node ids in
/// original-label space. Self-loops, out-of-range probabilities, and
/// duplicate edge keys within the batch are rejected with the offending
/// line number.
///
/// ```
/// use ugraph::io::read_edge_list_delta;
/// let muts = read_edge_list_delta("# delta\n1 2 0.5\n3 1 -\n".as_bytes()).unwrap();
/// assert_eq!(muts, vec![(1, 2, Some(0.5)), (3, 1, None)]);
/// assert!(read_edge_list_delta("1 2 0.5\n2 1 -\n".as_bytes()).is_err()); // dup key
/// ```
pub fn read_edge_list_delta<R: Read>(reader: R) -> Result<Vec<LabeledMutation>, IoError> {
    DeltaLines::new(BufReader::new(reader))
        .map(|r| r.map(|(_, m)| m))
        .collect()
}

/// What [`apply_edge_list_delta`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaApplied {
    /// Per-kind mutation counts.
    pub stats: ApplyStats,
    /// The generation the graph is at after the batch.
    pub generation: u64,
}

/// Applies a mutation file to a live [`DeltaGraph`] as **one atomic batch**:
/// the whole file is parsed and label-resolved first, so any error (bad
/// line, duplicate key, unknown label on a delete, delete of an absent
/// edge) leaves the graph — and its generation — untouched.
///
/// `labels` maps compact node ids to original labels (one entry per node;
/// identity-labeled graphs pass `(0..n).collect()`); labels never seen
/// before allocate new nodes and are appended on success.
///
/// ```
/// use ugraph::dynamic::DeltaGraph;
/// use ugraph::io::apply_edge_list_delta;
/// use ugraph::UncertainGraph;
///
/// // Labels 10 and 20 are nodes 0 and 1.
/// let base = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
/// let mut d = DeltaGraph::from_graph(base);
/// let mut labels = vec![10, 20];
/// let done = apply_edge_list_delta(&mut d, &mut labels, "10 20 0.9\n20 30 0.4\n".as_bytes())
///     .unwrap();
/// assert_eq!((done.stats.reweighted, done.stats.inserted), (1, 1));
/// assert_eq!(done.generation, 1);
/// assert_eq!(labels, vec![10, 20, 30]); // label 30 became node 2
/// assert_eq!(d.edge_prob(1, 2), Some(0.4));
/// ```
pub fn apply_edge_list_delta<R: Read>(
    delta: &mut DeltaGraph,
    labels: &mut Vec<u32>,
    reader: R,
) -> Result<DeltaApplied, IoError> {
    assert_eq!(
        labels.len(),
        delta.num_nodes(),
        "labels must carry one entry per node"
    );
    let mut index_of: std::collections::HashMap<u32, NodeId> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i as NodeId))
        .collect();
    let mut new_labels: Vec<u32> = Vec::new();
    let mut edges = Vec::new();
    let n0 = delta.num_nodes();
    for parsed in DeltaLines::new(BufReader::new(reader)) {
        let (lineno, (lu, lv, action)) = parsed?;
        let mut resolve = |label: u32, deleting: bool| -> Result<NodeId, IoError> {
            if let Some(&id) = index_of.get(&label) {
                return Ok(id);
            }
            if deleting {
                return Err(IoError::Parse(
                    lineno,
                    format!("unknown node label {label} in delete"),
                ));
            }
            let id = (n0 + new_labels.len()) as NodeId;
            new_labels.push(label);
            index_of.insert(label, id);
            Ok(id)
        };
        let deleting = action.is_none();
        let u = resolve(lu, deleting)?;
        let v = resolve(lv, deleting)?;
        match action {
            Some(p) => edges.push(EdgeMutation::Upsert(u, v, p)),
            None => {
                if !delta.has_edge(u, v) {
                    return Err(IoError::Parse(
                        lineno,
                        format!("cannot delete absent edge ({lu}, {lv})"),
                    ));
                }
                edges.push(EdgeMutation::Delete(u, v));
            }
        }
    }
    let batch = MutationBatch {
        add_nodes: new_labels.len(),
        edges,
    };
    // Everything above validated against the pre-batch state (keys are
    // unique within the batch, so that is exact); `apply` re-checks and can
    // only fail on an internal inconsistency.
    let stats = delta
        .apply(&batch)
        .map_err(|e| IoError::Parse(0, e.to_string()))?;
    labels.extend(new_labels);
    Ok(DeltaApplied {
        stats,
        generation: delta.generation(),
    })
}

/// IEEE CRC-32 lookup table (polynomial `0xEDB88320`), built in a const
/// context so the hand-rolled checksum costs one table lookup per byte.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 (the zlib/PNG polynomial) of `bytes`. The workspace vendors
/// no checksum crate, so this one implementation backs both the binary
/// checkpoint trailer and the `mpds-store` WAL record frames.
///
/// ```
/// use ugraph::io::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Magic + format version prefix of a binary graph checkpoint.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MPDSCKP1";

/// Writes a binary checkpoint of a materialized graph: edges, probability
/// bits, per-node labels, and the generation stamp, all little-endian, with
/// a trailing [`crc32`] over everything before it. The layout after the
/// [`CHECKPOINT_MAGIC`] prefix is `n: u64, m: u64, generation: u64`,
/// then `m` edge pairs (`u32, u32`), `m` probability bit patterns
/// (`f64::to_bits` as `u64`), and `n` labels (`u32`).
///
/// `labels` must carry exactly one entry per node. Readers recover the
/// exact same graph: probabilities round-trip bit-for-bit.
///
/// ```
/// use ugraph::io::{read_graph_checkpoint, write_graph_checkpoint};
/// use ugraph::UncertainGraph;
/// let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.25), (1, 2, 0.75)]);
/// let mut buf = Vec::new();
/// write_graph_checkpoint(&mut buf, &g, &[10, 20, 30], 7).unwrap();
/// let (g2, labels, generation) = read_graph_checkpoint(buf.as_slice()).unwrap();
/// assert_eq!((g2.num_nodes(), g2.num_edges()), (3, 2));
/// assert_eq!(labels, vec![10, 20, 30]);
/// assert_eq!(generation, 7);
/// assert_eq!(g2.edge_prob(0, 1), Some(0.25));
/// ```
pub fn write_graph_checkpoint<W: Write>(
    mut writer: W,
    g: &UncertainGraph,
    labels: &[u32],
    generation: u64,
) -> std::io::Result<()> {
    assert_eq!(
        labels.len(),
        g.num_nodes(),
        "labels must carry one entry per node"
    );
    let (n, m) = (g.num_nodes(), g.num_edges());
    let mut buf = Vec::with_capacity(8 + 24 + m * 16 + n * 4 + 4);
    buf.extend_from_slice(CHECKPOINT_MAGIC);
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    for &(u, v) in g.graph().edges() {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for i in 0..m {
        buf.extend_from_slice(&g.prob(i).to_bits().to_le_bytes());
    }
    for &l in labels {
        buf.extend_from_slice(&l.to_le_bytes());
    }
    let crc = crc32(&buf);
    writer.write_all(&buf)?;
    writer.write_all(&crc.to_le_bytes())?;
    writer.flush()
}

/// Reads a binary checkpoint written by [`write_graph_checkpoint`],
/// returning the graph, its labels, and the generation stamp. Any
/// structural problem — short file, wrong magic, inconsistent lengths, or
/// CRC mismatch — yields [`IoError::Corrupt`]; callers treat that as "this
/// checkpoint never happened" and fall back to an older one.
pub fn read_graph_checkpoint<R: Read>(
    mut reader: R,
) -> Result<(UncertainGraph, Vec<u32>, u64), IoError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let header_len = CHECKPOINT_MAGIC.len() + 24;
    if data.len() < header_len + 4 {
        return Err(IoError::Corrupt(format!(
            "file too short ({} bytes)",
            data.len()
        )));
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().expect("trailer is 4 bytes"));
    if crc32(body) != stored_crc {
        return Err(IoError::Corrupt("CRC mismatch".to_string()));
    }
    if &body[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
        return Err(IoError::Corrupt("bad magic".to_string()));
    }
    let u64_at =
        |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8-byte field"));
    let n = u64_at(8) as usize;
    let m = u64_at(16) as usize;
    let generation = u64_at(24);
    let expect = header_len + m * 16 + n * 4;
    if body.len() != expect {
        return Err(IoError::Corrupt(format!(
            "length {} does not match n={n}, m={m} (expected {expect})",
            body.len()
        )));
    }
    let mut off = header_len;
    let u32_next = |off: &mut usize| {
        let v = u32::from_le_bytes(body[*off..*off + 4].try_into().expect("4-byte field"));
        *off += 4;
        v
    };
    let mut weighted = Vec::with_capacity(m);
    for _ in 0..m {
        let u = u32_next(&mut off);
        let v = u32_next(&mut off);
        weighted.push((u as NodeId, v as NodeId, 0.0f64));
    }
    for w in weighted.iter_mut() {
        let bits = u64::from_le_bytes(body[off..off + 8].try_into().expect("8-byte field"));
        off += 8;
        w.2 = f64::from_bits(bits);
    }
    for (u, v, p) in &weighted {
        if *u as usize >= n || *v as usize >= n || u == v || !(*p > 0.0 && *p <= 1.0) {
            return Err(IoError::Corrupt(format!("invalid edge ({u}, {v}, {p})")));
        }
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(u32_next(&mut off));
    }
    let g = UncertainGraph::from_weighted_edges(n, &weighted);
    if g.num_edges() != m {
        return Err(IoError::Corrupt(format!(
            "duplicate edges collapsed: {m} stored, {} reconstructed",
            g.num_edges()
        )));
    }
    Ok((g, labels, generation))
}

/// Writes a weighted edge list (`u v p` per line), using `labels` to map
/// compact ids back to original labels (pass `None` for identity).
pub fn write_weighted_edge_list<W: Write>(
    writer: W,
    g: &UncertainGraph,
    labels: Option<&[u32]>,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
        let (lu, lv) = match labels {
            Some(l) => (l[u as usize], l[v as usize]),
            None => (u, v),
        };
        writeln!(w, "{} {} {}", lu, lv, g.prob(i))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# a comment\n10 20 0.5\n20 30 0.25\n\n10 30 1.0\n";
        let (g, labels) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
        assert_eq!(g.edge_prob(0, 1), Some(0.5));
        assert_eq!(g.edge_prob(0, 2), Some(1.0));
    }

    #[test]
    fn duplicate_edges_keep_last() {
        let text = "1 2 0.3\n2 1 0.9\n";
        let (g, _) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_prob(0, 1), Some(0.9));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            read_weighted_edge_list("1 1 0.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 1.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 zebra".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        // Error display contains the line number.
        let err = read_weighted_edge_list("ok ok ok".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.25), (1, 2, 0.5), (2, 3, 0.75)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, labels) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(labels.len(), 4);
        assert_eq!(g2.num_edges(), 3);
        for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
            // Map original ids through labels to compare probabilities.
            let lu = labels.iter().position(|&l| l == u).unwrap() as NodeId;
            let lv = labels.iter().position(|&l| l == v).unwrap() as NodeId;
            assert_eq!(g2.edge_prob(lu, lv), Some(g.prob(i)));
        }
    }

    #[test]
    fn roundtrip_with_custom_labels() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, Some(&[100, 200])).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("100 200 0.5"));
    }

    #[test]
    fn delta_parse_grammar_and_duplicates() {
        let muts = read_edge_list_delta("# batch\n1 2 0.5\n\n2 3 -\n4 1 1.0\n".as_bytes()).unwrap();
        assert_eq!(
            muts,
            vec![(1, 2, Some(0.5)), (2, 3, None), (4, 1, Some(1.0))]
        );
        // Duplicate canonical keys are rejected with the offending line.
        let err = read_edge_list_delta("1 2 0.5\n# ok\n2 1 -\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("duplicate edge"), "{err}");
        // Shared validation path: same rules as weighted edge lists.
        assert!(matches!(
            read_edge_list_delta("1 1 0.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list_delta("1 2 1.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_edge_list_delta("1 2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        // `-` is only a delete marker in the probability position.
        assert!(read_edge_list_delta("- 2 0.5".as_bytes()).is_err());
    }

    #[test]
    fn delta_apply_maps_labels_and_allocates_nodes() {
        let (g, mut labels) =
            read_weighted_edge_list("10 20 0.5\n20 30 0.25\n".as_bytes()).unwrap();
        let mut d = crate::dynamic::DeltaGraph::from_graph(g);
        let done = apply_edge_list_delta(
            &mut d,
            &mut labels,
            "10 20 0.9\n10 30 0.3\n30 40 0.8\n20 30 -\n".as_bytes(),
        )
        .unwrap();
        assert_eq!(done.stats.reweighted, 1);
        assert_eq!(done.stats.inserted, 2);
        assert_eq!(done.stats.deleted, 1);
        assert_eq!(done.stats.nodes_added, 1);
        assert_eq!(done.generation, 1);
        assert_eq!(labels, vec![10, 20, 30, 40]);
        assert_eq!(d.edge_prob(0, 1), Some(0.9));
        assert_eq!(d.edge_prob(0, 2), Some(0.3));
        assert_eq!(d.edge_prob(2, 3), Some(0.8));
        assert_eq!(d.edge_prob(1, 2), None);
    }

    #[test]
    fn delta_apply_is_atomic_on_error() {
        let (g, mut labels) = read_weighted_edge_list("10 20 0.5\n".as_bytes()).unwrap();
        let mut d = crate::dynamic::DeltaGraph::from_graph(g);
        // Line 2 deletes an unknown label: nothing may change.
        let err = apply_edge_list_delta(&mut d, &mut labels, "10 20 0.9\n10 99 -\n".as_bytes())
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("unknown node label 99"), "{err}");
        assert_eq!(d.generation(), 0);
        assert_eq!(d.edge_prob(0, 1), Some(0.5));
        assert_eq!(labels, vec![10, 20]);
        // Deleting a known-label but absent edge is also line-attributed.
        let mut more = labels.clone();
        let err =
            apply_edge_list_delta(&mut d, &mut more, "# no-op\n20 10 -\n10 20 -\n".as_bytes())
                .unwrap_err();
        // (duplicate key check fires first here, on line 3)
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = apply_edge_list_delta(&mut d, &mut more, "30 40 0.5\n10 20 -\n".as_bytes());
        assert!(err.is_ok(), "independent delete after inserts is fine");
        assert_eq!(d.generation(), 1);
        assert!(!d.has_edge(0, 1));
    }

    #[test]
    fn delta_lines_streams_and_fuses_on_error() {
        let mut it = DeltaLines::new("1 2 0.5\n2 1 -\n3 4 0.1\n".as_bytes());
        assert_eq!(it.next().unwrap().unwrap(), (1, (1, 2, Some(0.5))));
        let err = it.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // Fused after the duplicate-key error: line 3 is never yielded.
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn crc32_known_values() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.1 + 0.2), (1, 2, 1.0 / 3.0), (2, 3, 0.75)],
        );
        let mut buf = Vec::new();
        write_graph_checkpoint(&mut buf, &g, &[7, 8, 9, 10], 42).unwrap();
        let (g2, labels, generation) = read_graph_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(labels, vec![7, 8, 9, 10]);
        assert_eq!(g2.num_nodes(), 4);
        for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
            // Bit-exact probabilities, not just approximately equal.
            assert_eq!(
                g2.edge_prob(u, v).map(f64::to_bits),
                Some(g.prob(i).to_bits())
            );
        }
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
        let mut buf = Vec::new();
        write_graph_checkpoint(&mut buf, &g, &[1, 2], 3).unwrap();
        // Flip one byte anywhere in the body: CRC must catch it.
        for at in [0, 9, buf.len() / 2, buf.len() - 5] {
            let mut bad = buf.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    read_graph_checkpoint(bad.as_slice()),
                    Err(IoError::Corrupt(_))
                ),
                "byte flip at {at} not detected"
            );
        }
        // Truncations (torn writes) are also rejected.
        for cut in [0, 4, buf.len() - 1] {
            assert!(matches!(
                read_graph_checkpoint(&buf[..cut]),
                Err(IoError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn serde_json_roundtrip() {
        // UncertainGraph derives Serialize/Deserialize; verify a manual
        // field-level reconstruction (serde_json is not a dependency, so we
        // round-trip through the serde data model via the edge-list instead).
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 2, 0.4), (1, 2, 0.6)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, _) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
