//! Reading and writing uncertain graphs.
//!
//! Two formats:
//!
//! * **Weighted edge lists** — the format the paper's public datasets ship
//!   in: one `u v p` triple per line, `#`-comments and blank lines ignored.
//!   Node ids may be arbitrary `u32`s; they are compacted to `0..n` with the
//!   mapping returned to the caller.
//! * **Serde JSON** — lossless round-trip of [`UncertainGraph`] (the type
//!   derives `Serialize`/`Deserialize`), used for experiment checkpoints.

use crate::graph::NodeId;
use crate::uncertain::UncertainGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// `(line number, message)`.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a weighted edge list (`u v p` per line). Returns the graph plus
/// the original label of every compacted node id.
///
/// Duplicate edges keep the *last* probability seen; self-loops are rejected.
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<(UncertainGraph, Vec<u32>), IoError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<u32> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut edges: std::collections::BTreeMap<(NodeId, NodeId), f64> =
        std::collections::BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = |name: &str| {
            it.next()
                .ok_or_else(|| IoError::Parse(lineno, format!("missing {name}")))
        };
        let u: u32 = field("source")?
            .parse()
            .map_err(|e| IoError::Parse(lineno, format!("bad source: {e}")))?;
        let v: u32 = field("target")?
            .parse()
            .map_err(|e| IoError::Parse(lineno, format!("bad target: {e}")))?;
        let p: f64 = field("probability")?
            .parse()
            .map_err(|e| IoError::Parse(lineno, format!("bad probability: {e}")))?;
        if u == v {
            return Err(IoError::Parse(lineno, format!("self-loop on node {u}")));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(IoError::Parse(
                lineno,
                format!("probability {p} outside (0, 1]"),
            ));
        }
        let mut id = |label: u32| -> NodeId {
            *index_of.entry(label).or_insert_with(|| {
                labels.push(label);
                (labels.len() - 1) as NodeId
            })
        };
        let (a, b) = (id(u), id(v));
        let key = if a < b { (a, b) } else { (b, a) };
        edges.insert(key, p);
    }
    let weighted: Vec<(NodeId, NodeId, f64)> =
        edges.into_iter().map(|((u, v), p)| (u, v, p)).collect();
    let g = UncertainGraph::from_weighted_edges(labels.len(), &weighted);
    Ok((g, labels))
}

/// Writes a weighted edge list (`u v p` per line), using `labels` to map
/// compact ids back to original labels (pass `None` for identity).
pub fn write_weighted_edge_list<W: Write>(
    writer: W,
    g: &UncertainGraph,
    labels: Option<&[u32]>,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
        let (lu, lv) = match labels {
            Some(l) => (l[u as usize], l[v as usize]),
            None => (u, v),
        };
        writeln!(w, "{} {} {}", lu, lv, g.prob(i))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# a comment\n10 20 0.5\n20 30 0.25\n\n10 30 1.0\n";
        let (g, labels) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(labels, vec![10, 20, 30]);
        assert_eq!(g.edge_prob(0, 1), Some(0.5));
        assert_eq!(g.edge_prob(0, 2), Some(1.0));
    }

    #[test]
    fn duplicate_edges_keep_last() {
        let text = "1 2 0.3\n2 1 0.9\n";
        let (g, _) = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_prob(0, 1), Some(0.9));
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            read_weighted_edge_list("1 1 0.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 1.5".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_weighted_edge_list("1 2 zebra".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        // Error display contains the line number.
        let err = read_weighted_edge_list("ok ok ok".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.25), (1, 2, 0.5), (2, 3, 0.75)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, labels) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(labels.len(), 4);
        assert_eq!(g2.num_edges(), 3);
        for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
            // Map original ids through labels to compare probabilities.
            let lu = labels.iter().position(|&l| l == u).unwrap() as NodeId;
            let lv = labels.iter().position(|&l| l == v).unwrap() as NodeId;
            assert_eq!(g2.edge_prob(lu, lv), Some(g.prob(i)));
        }
    }

    #[test]
    fn roundtrip_with_custom_labels() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.5)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, Some(&[100, 200])).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("100 200 0.5"));
    }

    #[test]
    fn serde_json_roundtrip() {
        // UncertainGraph derives Serialize/Deserialize; verify a manual
        // field-level reconstruction (serde_json is not a dependency, so we
        // round-trip through the serde data model via the edge-list instead).
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 2, 0.4), (1, 2, 0.6)]);
        let mut buf = Vec::new();
        write_weighted_edge_list(&mut buf, &g, None).unwrap();
        let (g2, _) = read_weighted_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
