//! Edge-probability models (paper §VI-A, "Edge probability models").
//!
//! The paper derives edge probabilities from interaction counts
//! (`1 − e^{−t/μ}`, used for Karate Club / Twitter / Friendster), message
//! delivery rates (Intel Lab), inverse degrees (LastFM), and experimental
//! confidence scores (Homo Sapiens, Biomine). This module implements those
//! models so the synthetic stand-ins can match Table II's distributions.

use crate::graph::Graph;
use rand::Rng;
use rand_distr_normal::sample_normal;

/// `1 − e^{−t/μ}`: exponential CDF applied to an interaction count `t`
/// (paper's model for Karate Club, Twitter, and Friendster, with `μ = 20`).
pub fn exponential_cdf(t: f64, mu: f64) -> f64 {
    assert!(mu > 0.0);
    1.0 - (-t / mu).exp()
}

/// Assigns probabilities from per-edge interaction counts via
/// [`exponential_cdf`], clamped into `(0, 1]`.
pub fn probs_from_counts(counts: &[u32], mu: f64) -> Vec<f64> {
    counts
        .iter()
        .map(|&t| exponential_cdf(t as f64, mu).max(1e-9))
        .collect()
}

/// LastFM model: the probability of an edge is the reciprocal of the larger
/// of the degrees of its endpoints.
pub fn inverse_degree_probs(g: &Graph) -> Vec<f64> {
    g.edges()
        .iter()
        .map(|&(u, v)| {
            let d = g.degree(u).max(g.degree(v)).max(1);
            1.0 / d as f64
        })
        .collect()
}

/// Truncated-normal probabilities: `Normal(mean, std)` clamped into
/// `[lo, hi] ⊂ (0, 1]`. Matches the "normally distributed edge probabilities"
/// of the paper's Fig. 18 and approximates the confidence-score distributions
/// of Table II (Intel Lab, Homo Sapiens, Biomine) when `mean`/`std` are set to
/// the table's values.
pub fn truncated_normal_probs<R: Rng>(
    m: usize,
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(lo > 0.0 && hi <= 1.0 && lo <= hi);
    (0..m)
        .map(|_| sample_normal(rng, mean, std).clamp(lo, hi))
        .collect()
}

/// Uniform probabilities in `[lo, hi] ⊂ (0, 1]` (paper §VI-H assigns edge
/// probabilities "uniformly at random" on the synthetic graphs).
pub fn uniform_probs<R: Rng>(m: usize, lo: f64, hi: f64, rng: &mut R) -> Vec<f64> {
    assert!(lo > 0.0 && hi <= 1.0 && lo <= hi);
    (0..m).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Geometric-ish interaction counts for the synthetic social networks: counts
/// in `1..=cap` with mass decaying by `decay` per step, so that applying
/// `exponential_cdf(·, 20)` reproduces low-mean, right-skewed probability
/// distributions like Twitter's row of Table II.
pub fn interaction_counts<R: Rng>(m: usize, cap: u32, decay: f64, rng: &mut R) -> Vec<u32> {
    assert!(cap >= 1 && (0.0..1.0).contains(&decay));
    (0..m)
        .map(|_| {
            let mut t = 1u32;
            while t < cap && rng.gen_bool(decay) {
                t += 1;
            }
            t
        })
        .collect()
}

/// Summary statistics of a probability vector: `(mean, std, [q1, median, q3])`.
/// Used to verify the synthetic datasets against Table II.
pub fn prob_stats(probs: &[f64]) -> (f64, f64, [f64; 3]) {
    assert!(!probs.is_empty());
    let n = probs.len() as f64;
    let mean = probs.iter().sum::<f64>() / n;
    let var = probs.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
    let mut sorted = probs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f).round() as usize];
    (mean, var.sqrt(), [q(0.25), q(0.5), q(0.75)])
}

/// Minimal Box–Muller normal sampler (keeps us off extra dependencies).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, std: f64) -> f64 {
        // Box–Muller transform; u1 in (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_cdf_values() {
        assert!((exponential_cdf(0.0, 20.0) - 0.0).abs() < 1e-12);
        // t = 20, mu = 20 -> 1 - 1/e.
        assert!((exponential_cdf(20.0, 20.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(exponential_cdf(1e9, 20.0) <= 1.0);
    }

    #[test]
    fn counts_to_probs_monotone() {
        let p = probs_from_counts(&[1, 5, 20, 100], 20.0);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn inverse_degree_model() {
        // Star on 4 nodes: center degree 3, leaves degree 1 -> all probs 1/3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let p = inverse_degree_probs(&g);
        assert!(p.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn truncated_normal_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = truncated_normal_probs(5000, 0.33, 0.19, 0.01, 1.0, &mut rng);
        assert!(p.iter().all(|&x| (0.01..=1.0).contains(&x)));
        let (mean, std, _) = prob_stats(&p);
        // Truncation shifts moments slightly; verify rough agreement.
        assert!((mean - 0.33).abs() < 0.03, "mean {mean}");
        assert!((std - 0.19).abs() < 0.04, "std {std}");
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = uniform_probs(1000, 0.2, 0.8, &mut rng);
        assert!(p.iter().all(|&x| (0.2..=0.8).contains(&x)));
        let (mean, _, _) = prob_stats(&p);
        assert!((mean - 0.5).abs() < 0.03);
    }

    #[test]
    fn interaction_counts_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = interaction_counts(2000, 10, 0.5, &mut rng);
        assert!(c.iter().all(|&t| (1..=10).contains(&t)));
        // Expected value of the capped geometric is near 2 for decay 0.5.
        let mean = c.iter().map(|&t| t as f64).sum::<f64>() / c.len() as f64;
        assert!((mean - 2.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn stats_on_known_vector() {
        let (mean, std, q) = prob_stats(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert!((mean - 0.3).abs() < 1e-12);
        assert!((std - (0.02f64).sqrt()).abs() < 1e-12);
        assert_eq!(q, [0.2, 0.3, 0.4]);
    }
}
