//! Graph substrate for the MPDS (Most Probable Densest Subgraphs) reproduction.
//!
//! This crate provides the deterministic and uncertain graph types that every
//! other crate in the workspace builds on, together with:
//!
//! * [`Graph`] — a compact undirected, unweighted deterministic graph in
//!   cache-friendly CSR layout, built immutably via [`GraphBuilder`],
//! * [`bitset`] — dense bitsets: [`NodeBitSet`] membership sets and the
//!   [`EdgeMask`] possible-world bitmaps the samplers reuse across samples,
//! * [`UncertainGraph`] — a graph whose edges exist independently with a
//!   probability `p(e) ∈ (0, 1]` (the paper's `G = (V, E, p)`),
//! * [`DeltaGraph`] — a mutable, versioned uncertain graph: a mutation
//!   overlay over an immutable base with generation-stamped [`Snapshot`]s
//!   and overlay compaction (the [`dynamic`] subsystem),
//! * [`Pattern`] — small pattern graphs (`2-star`, `3-star`, `c3-star`,
//!   `diamond`, cliques, …) used for pattern-density,
//! * random-graph [`generators`] and the paper's edge-[`probability`] models,
//! * embedded and synthetic [`datasets`] (Zachary's Karate Club with ground
//!   truth, scaled stand-ins for the paper's large datasets),
//! * a [`brain`] network simulator reproducing the structural properties the
//!   paper's ABIDE case study relies on,
//! * the evaluation [`metrics`] of the paper's §VI (expected density,
//!   probabilistic density, probabilistic clustering coefficient, purity, F1).

pub mod bitset;
pub mod brain;
pub mod datasets;
pub mod dynamic;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod nodeset;
pub mod pattern;
pub mod probability;
pub mod uncertain;

pub use bitset::{EdgeMask, NodeBitSet};
pub use dynamic::{DeltaGraph, EdgeMutation, MutationBatch, Snapshot};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use nodeset::NodeSet;
pub use pattern::Pattern;
pub use uncertain::UncertainGraph;
