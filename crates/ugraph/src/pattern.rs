//! Small pattern graphs for pattern-density (paper Def. 3, Fig. 5).
//!
//! A [`Pattern`] is a tiny connected graph `ψ = (V_ψ, E_ψ)` whose instances
//! are counted in subgraphs. The paper's experiments use four patterns —
//! `2-star`, `3-star`, `c3-star`, `diamond` — plus `h`-cliques (of which the
//! edge is the `h = 2` special case). `c3-star` is modelled as the tailed
//! triangle ("paw"); see DESIGN.md §2 for the rationale.

use serde::{Deserialize, Serialize};

/// A small connected pattern graph with nodes `0..k` (`k ≤ 16`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    name: String,
    k: usize,
    edges: Vec<(u8, u8)>,
    /// Adjacency bitmasks: bit `j` of `adj[i]` set iff `(i, j) ∈ E_ψ`.
    adj: Vec<u16>,
}

impl Pattern {
    /// Builds a pattern from its edge list.
    ///
    /// # Panics
    /// If `k > 16`, on self-loops/duplicates/out-of-range edges, or if the
    /// pattern is disconnected (instances of disconnected patterns are not
    /// meaningful for density).
    pub fn new(name: impl Into<String>, k: usize, edges: &[(u8, u8)]) -> Self {
        assert!((2..=16).contains(&k), "pattern must have 2..=16 nodes");
        let mut adj = vec![0u16; k];
        let mut canon: Vec<(u8, u8)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(u != v, "pattern self-loop");
            assert!(
                (u as usize) < k && (v as usize) < k,
                "pattern edge out of range"
            );
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            assert!(adj[a as usize] & (1 << b) == 0, "duplicate pattern edge");
            adj[a as usize] |= 1 << b;
            adj[b as usize] |= 1 << a;
            canon.push((a, b));
        }
        canon.sort_unstable();
        let p = Pattern {
            name: name.into(),
            k,
            edges: canon,
            adj,
        };
        assert!(p.is_connected(), "pattern must be connected");
        p
    }

    /// The `h`-clique pattern (`h ≥ 2`); `clique(2)` is the single edge.
    pub fn clique(h: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..h as u8 {
            for v in (u + 1)..h as u8 {
                edges.push((u, v));
            }
        }
        Pattern::new(format!("{h}-clique"), h, &edges)
    }

    /// The single-edge pattern (edge density).
    pub fn edge() -> Self {
        Pattern::clique(2)
    }

    /// `2-star`: a center adjacent to two leaves (path on 3 nodes).
    pub fn two_star() -> Self {
        Pattern::new("2-star", 3, &[(0, 1), (0, 2)])
    }

    /// `3-star`: a center adjacent to three leaves (`K_{1,3}`).
    pub fn three_star() -> Self {
        Pattern::new("3-star", 4, &[(0, 1), (0, 2), (0, 3)])
    }

    /// `c3-star` (tailed triangle / "paw"): triangle `{0,1,2}` plus pendant `3`
    /// attached to node `0`.
    pub fn c3_star() -> Self {
        Pattern::new("c3-star", 4, &[(0, 1), (0, 2), (1, 2), (0, 3)])
    }

    /// `diamond`: `K_4` minus one edge (nodes `{0,1}` adjacent to everything,
    /// `2`–`3` missing). Matches the employer–employee–education motif of the
    /// paper's introduction.
    pub fn diamond() -> Self {
        Pattern::new("diamond", 4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
    }

    /// The four patterns of the paper's Fig. 5, in paper order.
    pub fn paper_patterns() -> Vec<Pattern> {
        vec![
            Pattern::two_star(),
            Pattern::three_star(),
            Pattern::c3_star(),
            Pattern::diamond(),
        ]
    }

    /// Human-readable pattern name (e.g. `"diamond"`, `"3-clique"`).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern nodes `|V_ψ|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.k
    }

    /// Number of pattern edges `|E_ψ|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Canonical pattern edges (`u < v`, sorted).
    #[inline]
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Whether pattern nodes `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u] & (1 << v) != 0
    }

    /// Degree of pattern node `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones() as usize
    }

    /// Whether the pattern is a complete graph (clique density is the special
    /// case of pattern density for cliques).
    pub fn is_clique(&self) -> bool {
        self.num_edges() == self.k * (self.k - 1) / 2
    }

    fn is_connected(&self) -> bool {
        let mut seen = 1u16; // start from node 0
        let mut frontier = vec![0usize];
        while let Some(u) = frontier.pop() {
            let mut nbrs = self.adj[u] & !seen;
            while nbrs != 0 {
                let v = nbrs.trailing_zeros() as usize;
                nbrs &= nbrs - 1;
                seen |= 1 << v;
                frontier.push(v);
            }
        }
        seen.count_ones() as usize == self.k
    }

    /// Number of automorphisms of the pattern, by brute force over the `k!`
    /// permutations (`k ≤ 16`, but in practice patterns have ≤ 6 nodes).
    /// `#embeddings = #instances × |Aut(ψ)|`, a relation the instance
    /// enumerator's tests rely on.
    pub fn automorphism_count(&self) -> usize {
        let mut perm: Vec<usize> = (0..self.k).collect();
        let mut count = 0;
        loop {
            let ok = self.edges.iter().all(|&(u, v)| {
                let (pu, pv) = (perm[u as usize], perm[v as usize]);
                self.has_edge(pu, pv)
            });
            if ok {
                count += 1;
            }
            if !next_permutation(&mut perm) {
                break;
            }
        }
        count
    }
}

/// Advances `perm` to the next lexicographic permutation; returns `false` when
/// `perm` was the last one.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && perm[i - 1] >= perm[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while perm[j] <= perm[i - 1] {
        j -= 1;
    }
    perm.swap(i - 1, j);
    perm[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_patterns() {
        assert_eq!(Pattern::edge().num_nodes(), 2);
        assert_eq!(Pattern::edge().num_edges(), 1);
        assert_eq!(Pattern::clique(3).num_edges(), 3);
        assert_eq!(Pattern::clique(5).num_edges(), 10);
        assert_eq!(Pattern::two_star().degree(0), 2);
        assert_eq!(Pattern::three_star().degree(0), 3);
        assert_eq!(Pattern::c3_star().num_edges(), 4);
        assert_eq!(Pattern::diamond().num_edges(), 5);
        assert!(Pattern::clique(4).is_clique());
        assert!(!Pattern::diamond().is_clique());
    }

    #[test]
    fn automorphism_counts() {
        assert_eq!(Pattern::edge().automorphism_count(), 2);
        assert_eq!(Pattern::clique(3).automorphism_count(), 6);
        assert_eq!(Pattern::clique(4).automorphism_count(), 24);
        // 2-star: swap the two leaves.
        assert_eq!(Pattern::two_star().automorphism_count(), 2);
        // 3-star: permute the three leaves.
        assert_eq!(Pattern::three_star().automorphism_count(), 6);
        // paw: swap the two degree-2 triangle nodes.
        assert_eq!(Pattern::c3_star().automorphism_count(), 2);
        // diamond: swap the two hubs, swap the two non-adjacent nodes.
        assert_eq!(Pattern::diamond().automorphism_count(), 4);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        Pattern::new("bad", 4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        Pattern::new("bad", 3, &[(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn permutation_helper_covers_all() {
        let mut p = vec![0, 1, 2];
        let mut count = 1;
        while next_permutation(&mut p) {
            count += 1;
        }
        assert_eq!(count, 6);
    }
}
