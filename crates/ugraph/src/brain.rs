//! Simulated uncertain brain networks for the paper's §VI-F case study.
//!
//! The paper builds two group-level uncertain graphs over the 116 AAL regions
//! of interest (ROIs) — one averaging 52 typically-developed (TD) children,
//! one averaging 49 children with autism spectrum disorder (ASD) — and shows
//! that the 3-clique MPDS of the ASD graph lies entirely in the occipital
//! lobe and is more hemispherically symmetric, while the TD MPDS also touches
//! the temporal lobe and cerebellum and is less symmetric.
//!
//! The ABIDE imaging data is not redistributable, so this module *simulates*
//! group-level graphs with exactly the structural properties the case study
//! measures: ASD = local occipital over-connectivity + high L/R symmetry;
//! TD = connectivity spanning occipital, temporal and cerebellar ROIs with
//! mild asymmetry (see DESIGN.md §4). ROI metadata (lobe, hemisphere, mirror
//! pairing) is faithful in spirit to the AAL-116 atlas layout.

use crate::graph::{Graph, NodeId};
use crate::uncertain::UncertainGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anatomical lobe of an ROI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lobe {
    /// Frontal lobe.
    Frontal,
    /// Temporal lobe.
    Temporal,
    /// Parietal lobe.
    Parietal,
    /// Occipital lobe.
    Occipital,
    /// Limbic system regions.
    Limbic,
    /// Subcortical nuclei.
    Subcortical,
    /// Cerebellar regions (including vermis).
    Cerebellum,
}

/// A brain region of interest.
#[derive(Debug, Clone)]
pub struct Roi {
    /// AAL-style region name, e.g. `CAL.L`.
    pub name: String,
    /// Anatomical lobe the region belongs to.
    pub lobe: Lobe,
    /// `0` = left hemisphere, `1` = right, `2` = vermis (midline).
    pub hemisphere: u8,
    /// Index of the mirror-image ROI in the other hemisphere, if any.
    pub mirror: Option<NodeId>,
}

/// The 116-ROI atlas used by both simulated cohorts.
#[derive(Debug, Clone)]
pub struct Atlas {
    /// Regions of interest, indexed by `NodeId`.
    pub rois: Vec<Roi>,
}

impl Atlas {
    /// Builds the simulated AAL-116-style atlas: 54 left/right pairs across
    /// six cerebral lobes plus the cerebellum, and 8 midline vermis regions.
    pub fn aal116() -> Atlas {
        // (base name, lobe, number of L/R pairs)
        let groups: &[(&str, Lobe, usize)] = &[
            ("PreCG", Lobe::Frontal, 1),
            ("SFG", Lobe::Frontal, 3),
            ("MFG", Lobe::Frontal, 3),
            ("IFG", Lobe::Frontal, 2),
            ("ORB", Lobe::Frontal, 4),
            ("SMA", Lobe::Frontal, 1),
            ("REC", Lobe::Frontal, 1),
            ("INS", Lobe::Limbic, 1),
            ("ACG", Lobe::Limbic, 1),
            ("PCG", Lobe::Limbic, 1),
            ("HIP", Lobe::Limbic, 1),
            ("PHG", Lobe::Limbic, 1),
            ("AMYG", Lobe::Limbic, 1),
            ("CAL", Lobe::Occipital, 1),
            ("CUN", Lobe::Occipital, 1),
            ("LING", Lobe::Occipital, 1),
            ("SOG", Lobe::Occipital, 1),
            ("MOG", Lobe::Occipital, 1),
            ("IOG", Lobe::Occipital, 1),
            ("FFG", Lobe::Temporal, 1),
            ("PoCG", Lobe::Parietal, 1),
            ("SPG", Lobe::Parietal, 1),
            ("IPL", Lobe::Parietal, 1),
            ("SMG", Lobe::Parietal, 1),
            ("ANG", Lobe::Parietal, 1),
            ("PCUN", Lobe::Parietal, 1),
            ("PCL", Lobe::Parietal, 1),
            ("CAU", Lobe::Subcortical, 1),
            ("PUT", Lobe::Subcortical, 1),
            ("PAL", Lobe::Subcortical, 1),
            ("THA", Lobe::Subcortical, 1),
            ("HES", Lobe::Temporal, 1),
            ("STG", Lobe::Temporal, 1),
            ("TPOsup", Lobe::Temporal, 1),
            ("MTG", Lobe::Temporal, 1),
            ("TPOmid", Lobe::Temporal, 1),
            ("ITG", Lobe::Temporal, 1),
            ("CRBLCrus1", Lobe::Cerebellum, 1),
            ("CRBLCrus2", Lobe::Cerebellum, 1),
            ("CRBL3", Lobe::Cerebellum, 1),
            ("CRBL45", Lobe::Cerebellum, 1),
            ("CRBL6", Lobe::Cerebellum, 1),
            ("CRBL7b", Lobe::Cerebellum, 1),
            ("CRBL8", Lobe::Cerebellum, 1),
            ("CRBL9", Lobe::Cerebellum, 1),
            ("CRBL10", Lobe::Cerebellum, 1),
        ];
        let mut rois = Vec::new();
        for &(base, lobe, pairs) in groups {
            for p in 0..pairs {
                let suffix = if pairs > 1 {
                    format!("{}", p + 1)
                } else {
                    String::new()
                };
                let l = rois.len() as NodeId;
                rois.push(Roi {
                    name: format!("{base}{suffix}.L"),
                    lobe,
                    hemisphere: 0,
                    mirror: Some(l + 1),
                });
                rois.push(Roi {
                    name: format!("{base}{suffix}.R"),
                    lobe,
                    hemisphere: 1,
                    mirror: Some(l),
                });
            }
        }
        // Midline vermis regions to reach 116 ROIs.
        for i in 0..(116 - rois.len()) {
            rois.push(Roi {
                name: format!("Vermis{}", i + 1),
                lobe: Lobe::Cerebellum,
                hemisphere: 2,
                mirror: None,
            });
        }
        assert_eq!(rois.len(), 116);
        Atlas { rois }
    }

    /// Index of the ROI with the given name.
    pub fn index_of(&self, name: &str) -> Option<NodeId> {
        self.rois
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as NodeId)
    }

    /// Distinct lobes spanned by a node set (the case study's headline
    /// measurement: the ASD MPDS spans exactly one lobe).
    pub fn lobes_spanned(&self, nodes: &[NodeId]) -> Vec<Lobe> {
        let mut lobes: Vec<Lobe> = nodes.iter().map(|&v| self.rois[v as usize].lobe).collect();
        lobes.sort_by_key(|l| *l as u8);
        lobes.dedup();
        lobes
    }

    /// Hemispheric symmetry of a node set: fraction of its nodes whose mirror
    /// ROI is also in the set. The paper reports the ASD MPDS as "more
    /// symmetrical" (only one unpaired node vs two for TD).
    pub fn symmetry(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 1.0;
        }
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let paired = nodes
            .iter()
            .filter(|&&v| {
                self.rois[v as usize]
                    .mirror
                    .is_some_and(|m| set.contains(&m))
            })
            .count();
        paired as f64 / nodes.len() as f64
    }

    /// Number of nodes in the set without their mirror ROI (the paper counts
    /// these directly: 1 for ASD, 3 for TD).
    pub fn unpaired_count(&self, nodes: &[NodeId]) -> usize {
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        nodes
            .iter()
            .filter(|&&v| {
                !self.rois[v as usize]
                    .mirror
                    .is_some_and(|m| set.contains(&m))
            })
            .count()
    }
}

/// Which simulated cohort to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cohort {
    /// Typically-developed control group.
    TypicallyDeveloped,
    /// Autism-spectrum-disorder group.
    Asd,
}

/// Simulates the group-level uncertain brain graph for a cohort.
///
/// Both cohorts share a weak random background; the ASD graph adds a strong,
/// hemispherically symmetric occipital clique; the TD graph adds a slightly
/// weaker occipital cluster extended by one temporal (FFG.R) and two
/// cerebellar (CRBL6.L, CRBLCrus2-ish) nodes, breaking symmetry.
pub fn simulate_group_graph(atlas: &Atlas, cohort: Cohort, seed: u64) -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ cohort_tag(cohort));
    let n = atlas.rois.len();
    // Later stages overwrite earlier ones: core probabilities take priority
    // over within-lobe noise, which takes priority over background noise.
    let mut map: std::collections::BTreeMap<(NodeId, NodeId), f64> =
        std::collections::BTreeMap::new();
    let push = |map: &mut std::collections::BTreeMap<(NodeId, NodeId), f64>,
                u: NodeId,
                v: NodeId,
                p: f64| {
        if u != v {
            let key = if u < v { (u, v) } else { (v, u) };
            map.insert(key, p.clamp(1e-3, 1.0));
        }
    };

    // Weak background connectivity (co-activation noise).
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(0.04) {
                push(&mut map, u, v, rng.gen_range(0.02..0.15));
            }
        }
    }

    // Mid-strength within-lobe connectivity for every lobe.
    for lobe_nodes in lobe_partition(atlas) {
        for (i, &u) in lobe_nodes.iter().enumerate() {
            for &v in &lobe_nodes[i + 1..] {
                if rng.gen_bool(0.25) {
                    push(&mut map, u, v, rng.gen_range(0.1..0.35));
                }
            }
        }
    }

    // Shared cross-lobe "default mode"-style hub structure, IDENTICAL in both
    // cohorts (own RNG stream seeded without the cohort tag): 24 frontal /
    // parietal / limbic / subcortical ROIs moderately interconnected
    // (p ≈ 0.45). Degree-wise this dominates both cohort cores — so the
    // innermost (k, η)-core lands here in BOTH cohorts and cannot tell them
    // apart (paper Figs. 12–13) — while staying triangle-poor enough
    // (expected 3-clique density ≈ 7.7 vs ≥ 11 for the cores) that the
    // 3-clique MPDS and EDS are unaffected.
    let mut hub_rng = StdRng::seed_from_u64(seed ^ 0x4855_4253); // "HUBS"
    let hubs: Vec<NodeId> = hub_roi_names()
        .iter()
        .map(|nm| atlas.index_of(nm).expect("hub ROI in atlas"))
        .collect();
    for (i, &u) in hubs.iter().enumerate() {
        for &v in &hubs[i + 1..] {
            push(&mut map, u, v, hub_rng.gen_range(0.40..0.45));
        }
    }

    let occipital: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| atlas.rois[v as usize].lobe == Lobe::Occipital)
        .collect();
    match cohort {
        Cohort::Asd => {
            // Strong symmetric occipital core (local over-connectivity) with
            // exactly one unpaired node: MOG.R participates, MOG.L is left at
            // background strength.
            let mog_l = atlas.index_of("MOG.L").expect("atlas has MOG.L");
            let core: Vec<NodeId> = occipital.iter().copied().filter(|&v| v != mog_l).collect();
            for (i, &u) in core.iter().enumerate() {
                for &v in &core[i + 1..] {
                    push(&mut map, u, v, rng.gen_range(0.85..0.99));
                }
            }
        }
        Cohort::TypicallyDeveloped => {
            // Distributed core: a symmetric occipital subset (CAL/SOG/MOG/IOG
            // pairs) extended by FFG.R (temporal) and CRBL6.L (cerebellum) —
            // two nodes without hemispheric counterparts in the core, plus
            // mildly weaker probabilities than the ASD core (long-range
            // connectivity).
            let mut core: Vec<NodeId> = [
                "CAL.L", "CAL.R", "SOG.L", "SOG.R", "MOG.L", "MOG.R", "IOG.L", "IOG.R",
            ]
            .iter()
            .map(|nm| atlas.index_of(nm).expect("atlas ROI"))
            .collect();
            core.push(atlas.index_of("FFG.R").expect("atlas has FFG.R"));
            core.push(atlas.index_of("CRBL6.L").expect("atlas has CRBL6.L"));
            for (i, &u) in core.iter().enumerate() {
                for &v in &core[i + 1..] {
                    push(&mut map, u, v, rng.gen_range(0.82..0.97));
                }
            }
        }
    }

    let graph_edges: Vec<(NodeId, NodeId)> = map.keys().copied().collect();
    let graph = Graph::from_edges(n, &graph_edges);
    let probs: Vec<f64> = map.values().copied().collect();
    UncertainGraph::new(graph, probs)
}

/// The 24 shared cross-lobe hub ROIs (12 L/R pairs spanning frontal,
/// parietal, limbic, and subcortical lobes — including PCUN.R and MFG1.R,
/// which the paper's EDS/core figures call out).
pub fn hub_roi_names() -> [&'static str; 24] {
    [
        "MFG1.L", "MFG1.R", "SFG1.L", "SFG1.R", "IFG1.L", "IFG1.R", "PCUN.L", "PCUN.R", "SPG.L",
        "SPG.R", "IPL.L", "IPL.R", "SMG.L", "SMG.R", "ACG.L", "ACG.R", "INS.L", "INS.R", "CAU.L",
        "CAU.R", "PUT.L", "PUT.R", "THA.L", "THA.R",
    ]
}

fn cohort_tag(c: Cohort) -> u64 {
    match c {
        Cohort::TypicallyDeveloped => 0x5444, // "TD"
        Cohort::Asd => 0x4153_4400,           // "ASD"
    }
}

fn lobe_partition(atlas: &Atlas) -> Vec<Vec<NodeId>> {
    use std::collections::HashMap;
    let mut map: HashMap<u8, Vec<NodeId>> = HashMap::new();
    for (i, roi) in atlas.rois.iter().enumerate() {
        map.entry(roi.lobe as u8).or_default().push(i as NodeId);
    }
    let mut parts: Vec<_> = map.into_values().collect();
    parts.sort_by_key(|p| p[0]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_has_116_rois_with_mirrors() {
        let atlas = Atlas::aal116();
        assert_eq!(atlas.rois.len(), 116);
        let paired = atlas.rois.iter().filter(|r| r.mirror.is_some()).count();
        assert_eq!(paired, 108); // 54 pairs
        for (i, roi) in atlas.rois.iter().enumerate() {
            if let Some(m) = roi.mirror {
                assert_eq!(atlas.rois[m as usize].mirror, Some(i as NodeId));
                assert_ne!(atlas.rois[m as usize].hemisphere, roi.hemisphere);
                assert_eq!(atlas.rois[m as usize].lobe, roi.lobe);
            }
        }
    }

    #[test]
    fn atlas_contains_case_study_rois() {
        let atlas = Atlas::aal116();
        for name in [
            "MOG.R",
            "CRBL6.L",
            "FFG.R",
            "PCUN.R",
            "PCG.L",
            "CRBLCrus2.L",
        ] {
            assert!(atlas.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn symmetry_and_lobes() {
        let atlas = Atlas::aal116();
        let l = atlas.index_of("MOG.L").unwrap();
        let r = atlas.index_of("MOG.R").unwrap();
        let f = atlas.index_of("FFG.R").unwrap();
        assert_eq!(atlas.symmetry(&[l, r]), 1.0);
        assert_eq!(atlas.unpaired_count(&[l, r]), 0);
        assert!((atlas.symmetry(&[l, r, f]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(atlas.unpaired_count(&[l, r, f]), 1);
        let lobes = atlas.lobes_spanned(&[l, r, f]);
        assert_eq!(lobes.len(), 2);
    }

    #[test]
    fn asd_graph_has_strong_occipital_core() {
        let atlas = Atlas::aal116();
        let g = simulate_group_graph(&atlas, Cohort::Asd, 7);
        assert_eq!(g.num_nodes(), 116);
        // The occipital core minus MOG.L should be a near-certain clique.
        let mog_l = atlas.index_of("MOG.L").unwrap();
        let core: Vec<NodeId> = (0..116)
            .filter(|&v| atlas.rois[v as usize].lobe == Lobe::Occipital && v != mog_l)
            .collect();
        for (i, &u) in core.iter().enumerate() {
            for &v in &core[i + 1..] {
                let p = g.edge_prob(u, v).unwrap_or(0.0);
                assert!(p >= 0.85, "core edge ({u},{v}) weak: {p}");
            }
        }
    }

    #[test]
    fn td_graph_spans_lobes() {
        let atlas = Atlas::aal116();
        let g = simulate_group_graph(&atlas, Cohort::TypicallyDeveloped, 7);
        let ffg = atlas.index_of("FFG.R").unwrap();
        let crbl = atlas.index_of("CRBL6.L").unwrap();
        let mog = atlas.index_of("MOG.L").unwrap();
        assert!(g.edge_prob(ffg, mog).unwrap_or(0.0) >= 0.78);
        assert!(g.edge_prob(crbl, mog).unwrap_or(0.0) >= 0.78);
    }

    #[test]
    fn hub_structure_is_identical_across_cohorts() {
        let atlas = Atlas::aal116();
        let td = simulate_group_graph(&atlas, Cohort::TypicallyDeveloped, 5);
        let asd = simulate_group_graph(&atlas, Cohort::Asd, 5);
        let hubs: Vec<NodeId> = hub_roi_names()
            .iter()
            .map(|nm| atlas.index_of(nm).unwrap())
            .collect();
        assert_eq!(hubs.len(), 24);
        for (i, &u) in hubs.iter().enumerate() {
            for &v in &hubs[i + 1..] {
                let a = td.edge_prob(u, v).expect("hub edge in TD");
                let b = asd.edge_prob(u, v).expect("hub edge in ASD");
                assert_eq!(a, b, "hub edge ({u},{v}) differs between cohorts");
                assert!((0.40..0.45).contains(&a));
            }
        }
        // The hubs span at least three lobes.
        assert!(atlas.lobes_spanned(&hubs).len() >= 3);
    }

    #[test]
    fn simulation_is_deterministic() {
        let atlas = Atlas::aal116();
        let a = simulate_group_graph(&atlas, Cohort::Asd, 3);
        let b = simulate_group_graph(&atlas, Cohort::Asd, 3);
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_eq!(a.probs(), b.probs());
    }
}
