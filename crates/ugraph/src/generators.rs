//! Random graph generators.
//!
//! Used both for the paper's synthetic accuracy experiments (Erdős–Rényi and
//! Barabási–Albert graphs of §VI-H) and for the scaled stand-ins of the
//! paper's large real datasets (see `datasets` and DESIGN.md §4).

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly from all
/// node pairs. Panics if `m` exceeds `n(n-1)/2`.
pub fn erdos_renyi_nm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "m = {m} exceeds the {max} possible edges");
    let mut g = GraphBuilder::new(n);
    if 3 * m >= max {
        // Dense regime: shuffle all pairs and take a prefix.
        let mut pairs = Vec::with_capacity(max);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                pairs.push((u, v));
            }
        }
        pairs.shuffle(rng);
        for &(u, v) in pairs.iter().take(m) {
            g.add_edge(u, v);
        }
    } else {
        // Sparse regime: rejection sampling.
        let mut chosen = std::collections::HashSet::with_capacity(m);
        while chosen.len() < m {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let e = if u < v { (u, v) } else { (v, u) };
            if chosen.insert(e) {
                g.add_edge(e.0, e.1);
            }
        }
    }
    g.build()
}

/// Erdős–Rényi `G(n, p)`: every pair appears independently with probability `p`.
pub fn erdos_renyi_np<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes, then each new node attaches to `attach` distinct
/// existing nodes chosen proportionally to degree.
pub fn barabasi_albert<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Graph {
    barabasi_albert_builder(n, attach, rng).build()
}

/// [`barabasi_albert`] stopped one step short of CSR assembly, so callers
/// that keep planting extra edges (e.g. [`community_backbone`]) can extend
/// the builder before paying for the build.
fn barabasi_albert_builder<R: Rng>(n: usize, attach: usize, rng: &mut R) -> GraphBuilder {
    assert!(attach >= 1 && n > attach, "need n > attach >= 1");
    let mut g = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-proportional.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for u in 0..=attach as NodeId {
        for v in (u + 1)..=attach as NodeId {
            g.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (attach + 1)..n {
        let v = v as NodeId;
        // BTreeSet keeps target iteration order deterministic per seed.
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < attach {
            let t = *endpoints
                .as_slice()
                .choose(rng)
                .expect("endpoint list non-empty");
            targets.insert(t);
        }
        for &t in &targets {
            g.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Planted-partition graph: `n` nodes split round-robin into `communities`
/// groups; intra-community pairs get probability `p_in`, inter-community
/// pairs `p_out`. Returns the graph and each node's community label.
pub fn planted_partition<R: Rng>(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> (Graph, Vec<usize>) {
    assert!(communities >= 1);
    let labels: Vec<usize> = (0..n).map(|i| i % communities).collect();
    let mut g = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let p = if labels[u as usize] == labels[v as usize] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    (g.build(), labels)
}

/// Sparse planted communities for large graphs: a BA-style sparse backbone
/// plus `communities.len()` dense planted groups (node-index ranges) whose
/// internal pairs are added with probability `p_in`.
///
/// The dense groups are what make the MPDS/NDS experiments interesting —
/// they create worlds with clear densest subgraphs — while the backbone
/// supplies realistic degree skew at scale.
pub fn community_backbone<R: Rng>(
    n: usize,
    backbone_attach: usize,
    community_sizes: &[usize],
    p_in: f64,
    rng: &mut R,
) -> (Graph, Vec<usize>) {
    let mut g = barabasi_albert_builder(n, backbone_attach, rng);
    let mut labels = vec![usize::MAX; n];
    let mut start = 0usize;
    for (c, &size) in community_sizes.iter().enumerate() {
        assert!(start + size <= n, "community sizes exceed n");
        for u in start..start + size {
            labels[u] = c;
            for v in (u + 1)..start + size {
                if rng.gen_bool(p_in) && !g.has_edge(u as NodeId, v as NodeId) {
                    g.add_edge(u as NodeId, v as NodeId);
                }
            }
        }
        start += size;
    }
    (g.build(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_nm_exact_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi_nm(20, 30, &mut rng);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn er_nm_dense_regime() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi_nm(6, 14, &mut rng);
        assert_eq!(g.num_edges(), 14);
        // Complete graph corner case.
        let g = erdos_renyi_nm(5, 10, &mut rng);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn er_np_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_np(30, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi_np(10, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn ba_edge_count_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(42);
        let (n, attach) = (50, 3);
        let g = barabasi_albert(n, attach, &mut rng);
        // Seed clique has C(attach+1, 2) edges, each later node adds `attach`.
        let expected = (attach + 1) * attach / 2 + (n - attach - 1) * attach;
        assert_eq!(g.num_edges(), expected);
        assert_eq!(g.connected_components().len(), 1);
    }

    #[test]
    fn ba_is_deterministic_per_seed() {
        let g1 = barabasi_albert(30, 2, &mut StdRng::seed_from_u64(9));
        let g2 = barabasi_albert(30, 2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn planted_partition_labels() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, labels) = planted_partition(40, 4, 0.9, 0.01, &mut rng);
        assert_eq!(labels.len(), 40);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 10);
        // Intra-community edges should dominate at these settings.
        let intra = g
            .edges()
            .iter()
            .filter(|&&(u, v)| labels[u as usize] == labels[v as usize])
            .count();
        assert!(intra * 2 > g.num_edges());
    }

    #[test]
    fn community_backbone_plants_dense_groups() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, labels) = community_backbone(200, 2, &[12, 10], 0.95, &mut rng);
        assert_eq!(g.num_nodes(), 200);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 12);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 10);
        // First planted group should be near-complete: >= 80% of its pairs.
        let cnt = g.induced_edge_count(&(0..12).collect::<Vec<_>>());
        assert!(cnt >= 12 * 11 / 2 * 8 / 10, "got {cnt}");
    }
}
