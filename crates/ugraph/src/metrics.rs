//! Evaluation metrics of the paper's §VI.
//!
//! * [`probabilistic_density`] — Eq. 19 (`PD(U)`), cohesiveness of an
//!   uncertain subgraph (Tables V).
//! * [`probabilistic_clustering_coefficient`] — Eq. 20 (`PCC(U)`), how well
//!   the nodes cluster together (Table VI).
//! * [`purity`] — highest fraction of a node set drawn from one ground-truth
//!   community (Table X).
//!
//! Expected edge density lives on [`UncertainGraph`]; F1/Jaccard live in
//! [`crate::nodeset`].

use crate::bitset::NodeBitSet;
use crate::graph::NodeId;
use crate::uncertain::UncertainGraph;

/// Probabilistic density `PD(U)` (paper Eq. 19): twice the sum of the
/// probabilities of the edges induced by `U`, divided by the number of node
/// pairs `|U|(|U|−1)`.
pub fn probabilistic_density(g: &UncertainGraph, nodes: &[NodeId]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let mark = NodeBitSet::from_members(g.num_nodes(), nodes);
    let mut sum = 0.0;
    for (i, &(u, v)) in g.graph().edges().iter().enumerate() {
        if mark.contains(u as usize) && mark.contains(v as usize) {
            sum += g.prob(i);
        }
    }
    2.0 * sum / (nodes.len() * (nodes.len() - 1)) as f64
}

/// Probabilistic clustering coefficient `PCC(U)` (paper Eq. 20): three times
/// the weighted number of triangles in `U` divided by the weighted number of
/// adjacent edge pairs (open wedges), where weights are existence
/// probabilities under edge independence.
pub fn probabilistic_clustering_coefficient(g: &UncertainGraph, nodes: &[NodeId]) -> f64 {
    if nodes.len() < 3 {
        return 0.0;
    }
    let mark = NodeBitSet::from_members(g.num_nodes(), nodes);
    let gr = g.graph();
    // Numerator: triangles fully inside U, weighted by the product of their
    // three edge probabilities.
    let mut tri_sum = 0.0;
    for (u, v, w) in gr.triangles() {
        if mark.contains(u as usize) && mark.contains(v as usize) && mark.contains(w as usize) {
            let puv = g.prob(gr.edge_index(u, v).unwrap());
            let puw = g.prob(gr.edge_index(u, w).unwrap());
            let pvw = g.prob(gr.edge_index(v, w).unwrap());
            tri_sum += puv * puw * pvw;
        }
    }
    // Denominator: ordered wedges centred at each u in U with both endpoints
    // in U, weighted by the product of the two edge probabilities. Each
    // unordered neighbor pair {v, w} of u is counted once. The neighbor and
    // probability slices come arc-aligned from the CSR, so the inner pair
    // loop does no edge-index lookups at all.
    let mut wedge_sum = 0.0;
    let mut nbr_probs: Vec<f64> = Vec::new();
    for &u in nodes {
        let (nbrs, probs) = g.neighbors_with_probs(u);
        nbr_probs.clear();
        nbr_probs.extend(
            nbrs.iter()
                .zip(probs)
                .filter(|(&v, _)| mark.contains(v as usize))
                .map(|(_, &p)| p),
        );
        for i in 0..nbr_probs.len() {
            for j in (i + 1)..nbr_probs.len() {
                wedge_sum += nbr_probs[i] * nbr_probs[j];
            }
        }
    }
    if wedge_sum == 0.0 {
        0.0
    } else {
        3.0 * tri_sum / wedge_sum
    }
}

/// Purity of a node set against ground-truth communities: the highest
/// fraction of nodes belonging to a single community (paper §VI-E).
pub fn purity(nodes: &[NodeId], communities: &[usize]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &v in nodes {
        *counts.entry(communities[v as usize]).or_insert(0) += 1;
    }
    let best = counts.values().copied().max().unwrap_or(0);
    best as f64 / nodes.len() as f64
}

/// Average purity over a ranked list of node sets (Table X reports the purity
/// averaged over the top-k results).
pub fn average_purity(sets: &[Vec<NodeId>], communities: &[usize]) -> f64 {
    if sets.is_empty() {
        return 0.0;
    }
    sets.iter().map(|s| purity(s, communities)).sum::<f64>() / sets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uncertain::UncertainGraph;

    fn triangle_graph() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.5), (0, 2, 0.4), (1, 2, 0.8), (2, 3, 0.9)],
        )
    }

    #[test]
    fn pd_triangle() {
        let g = triangle_graph();
        // U = {0,1,2}: sum p = 1.7, pairs = 3 -> PD = 2*1.7/6.
        let pd = probabilistic_density(&g, &[0, 1, 2]);
        assert!((pd - 2.0 * 1.7 / 6.0).abs() < 1e-12);
        // Singleton and empty sets have PD 0.
        assert_eq!(probabilistic_density(&g, &[0]), 0.0);
        assert_eq!(probabilistic_density(&g, &[]), 0.0);
    }

    #[test]
    fn pd_counts_only_induced_edges() {
        let g = triangle_graph();
        // U = {0,1,3}: only (0,1) induced -> PD = 2*0.5/6.
        let pd = probabilistic_density(&g, &[0, 1, 3]);
        assert!((pd - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pcc_triangle() {
        let g = triangle_graph();
        // U = {0,1,2}: one triangle with weight .5*.4*.8 = .16.
        // Wedges: at 0: (1,2) w .5*.4=.2; at 1: (0,2) w .5*.8=.4;
        // at 2: (0,1) w .4*.8=.32 -> total .92. PCC = 3*.16/.92.
        let pcc = probabilistic_clustering_coefficient(&g, &[0, 1, 2]);
        assert!((pcc - 3.0 * 0.16 / 0.92).abs() < 1e-12);
    }

    #[test]
    fn pcc_on_certain_triangle_is_one() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]);
        let pcc = probabilistic_clustering_coefficient(&g, &[0, 1, 2]);
        assert!((pcc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pcc_no_wedges_is_zero() {
        let g = UncertainGraph::from_weighted_edges(4, &[(0, 1, 0.9), (2, 3, 0.9)]);
        assert_eq!(probabilistic_clustering_coefficient(&g, &[0, 1, 2, 3]), 0.0);
        assert_eq!(probabilistic_clustering_coefficient(&g, &[0, 1]), 0.0);
    }

    #[test]
    fn purity_values() {
        let comms = vec![0, 0, 0, 1, 1];
        assert_eq!(purity(&[0, 1, 2], &comms), 1.0);
        assert!((purity(&[0, 1, 3], &comms) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(purity(&[], &comms), 0.0);
        let avg = average_purity(&[vec![0, 1, 2], vec![3, 4]], &comms);
        assert_eq!(avg, 1.0);
    }
}
