//! Deterministic, undirected, unweighted graphs in CSR form.
//!
//! Nodes are dense integer identifiers `0..n`. The graph is stored as a
//! compressed sparse row (CSR) structure: one `offsets` array of length
//! `n + 1` and two parallel arc arrays of length `2m` — `neighbors` (the head
//! of every arc, sorted within each row) and `arc_edges` (the canonical edge
//! index behind every arc). The canonical edge list `(u, v)` with `u < v`
//! is kept alongside so the uncertain layer can attach one probability per
//! edge by index. Neighborhood iteration is therefore a contiguous slice
//! scan — no per-vertex heap allocations, no pointer chasing — which is what
//! the sampling/peeling/flow inner loops spend most of their time doing.
//!
//! A [`Graph`] is immutable once built; incremental construction goes through
//! [`GraphBuilder`]. Self-loops and parallel edges are rejected: the paper
//! works on simple graphs.

use crate::bitset::{DenseBitSet, NodeBitSet};
use serde::{Deserialize, Serialize};

/// Dense node identifier. `u32` keeps the arc arrays half the size of `usize`
/// on 64-bit targets, which matters for the million-edge synthetic datasets.
pub type NodeId = u32;

/// An undirected simple graph in CSR (compressed sparse row) layout.
///
/// The derives are markers today (the vendored serde cannot serialize); if a
/// real serde is restored, replace them with a custom impl that persists
/// only `edges` + node count and rebuilds the derived CSR arrays on
/// deserialize, rather than trusting them from the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Row offsets: the arcs of node `v` are `offsets[v]..offsets[v + 1]`.
    offsets: Vec<u32>,
    /// Head of every arc; sorted ascending within each row.
    neighbors: Vec<NodeId>,
    /// Canonical edge index behind every arc (parallel to `neighbors`).
    arc_edges: Vec<u32>,
    /// Canonical edge list; every entry satisfies `u < v`, sorted ascending.
    edges: Vec<(NodeId, NodeId)>,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

/// Incremental constructor for [`Graph`].
///
/// Collects edges (with immediate self-loop / range / duplicate validation),
/// then [`GraphBuilder::build`] assembles the CSR arrays in one `O(n + m log m)`
/// pass — much cheaper than the sorted-insertion adjacency lists this replaced,
/// which paid `O(deg)` memmove per insertion.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: std::collections::HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: std::collections::HashSet::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the undirected edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&key)
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self-loop ({u}, {v})");
        let n = self.n as NodeId;
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
        let key = if u < v { (u, v) } else { (v, u) };
        assert!(self.seen.insert(key), "duplicate edge ({u}, {v})");
        self.edges.push(key);
    }

    /// Assembles the immutable CSR graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        Graph::assemble(self.n, self.edges, Vec::new(), Vec::new(), Vec::new())
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            arc_edges: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list. Node count is `n`; edges outside
    /// `0..n`, self-loops, and duplicates (in either orientation) are rejected.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Core CSR assembly from a *sorted, canonical, duplicate-free* edge
    /// list, reusing the three passed vectors as backing storage (they are
    /// cleared first). The counting sort below fills each row in edge order,
    /// which — because the edge list is sorted — leaves every row sorted
    /// ascending, so the binary searches in [`Graph::has_edge`] stay valid.
    pub(crate) fn assemble(
        n: usize,
        edges: Vec<(NodeId, NodeId)>,
        mut offsets: Vec<u32>,
        mut neighbors: Vec<NodeId>,
        mut arc_edges: Vec<u32>,
    ) -> Graph {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges not sorted");
        let m = edges.len();
        offsets.clear();
        offsets.resize(n + 1, 0);
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        neighbors.clear();
        neighbors.resize(2 * m, 0);
        arc_edges.clear();
        arc_edges.resize(2 * m, 0);
        // Fill using offsets[v] as the write cursor of row v; afterwards every
        // cursor has advanced to the row end, i.e. offsets[v] == start of row
        // v + 1, so one backwards rotation restores the offsets array.
        for (i, &(u, v)) in edges.iter().enumerate() {
            let cu = offsets[u as usize] as usize;
            neighbors[cu] = v;
            arc_edges[cu] = i as u32;
            offsets[u as usize] += 1;
            let cv = offsets[v as usize] as usize;
            neighbors[cv] = u;
            arc_edges[cv] = i as u32;
            offsets[v as usize] += 1;
        }
        for v in (1..=n).rev() {
            offsets[v] = offsets[v - 1];
        }
        if n > 0 {
            offsets[0] = 0;
        }
        Graph {
            offsets,
            neighbors,
            arc_edges,
            edges,
        }
    }

    /// Builds the subgraph selected by `mask` over this graph's canonical
    /// edges, recycling `recycle`'s backing storage (no allocations once the
    /// buffers have grown to size). This is the hot path behind possible-world
    /// materialization: `O(n + m/64 + m_world)` per call.
    pub fn filter_edges(&self, mask: &DenseBitSet, recycle: Graph) -> Graph {
        assert_eq!(
            mask.universe(),
            self.num_edges(),
            "edge mask universe must match the edge count"
        );
        let Graph {
            offsets,
            neighbors,
            arc_edges,
            mut edges,
        } = recycle;
        edges.clear();
        edges.extend(mask.ones().map(|i| self.edges[i]));
        Graph::assemble(self.num_nodes(), edges, offsets, neighbors, arc_edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor list of `v` (a contiguous CSR row).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.arc_range(v)]
    }

    /// Arc index range of `v`'s row in [`Graph::arc_targets`] /
    /// [`Graph::arc_edge_ids`].
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// The full arc-head array (length `2m`).
    #[inline]
    pub fn arc_targets(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Canonical edge index behind every arc (parallel to
    /// [`Graph::arc_targets`]).
    #[inline]
    pub fn arc_edge_ids(&self) -> &[u32] {
        &self.arc_edges
    }

    /// CSR row offsets (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Neighbors of `v` together with the canonical edge index of each
    /// incident edge — one slice pair, no lookups.
    #[inline]
    pub fn neighbors_with_edge_ids(&self, v: NodeId) -> (&[NodeId], &[u32]) {
        let r = self.arc_range(v);
        (&self.neighbors[r.clone()], &self.arc_edges[r])
    }

    /// Canonical edge list; every entry satisfies `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Index of edge `(u, v)` in [`Graph::edges`], if present.
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&(a, b)).ok()
    }

    /// Whether the edge `(u, v)` exists (binary search on the smaller row).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Edge density `|E| / |V|` (paper Def. 1). Returns 0 for the empty graph.
    pub fn edge_density(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Subgraph induced by `nodes` (paper notation `G[W]`).
    ///
    /// Returns the induced graph with nodes relabelled `0..nodes.len()` in the
    /// order given, plus the mapping from new ids back to original ids.
    /// `nodes` must be duplicate-free.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut rename = vec![NodeId::MAX; self.num_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(
                rename[v as usize] == NodeId::MAX,
                "duplicate node {v} in induced_subgraph"
            );
            rename[v as usize] = i as NodeId;
        }
        let mut sub_edges = Vec::new();
        for &v in nodes {
            let nv = rename[v as usize];
            for &w in self.neighbors(v) {
                let nw = rename[w as usize];
                if nw != NodeId::MAX && nv < nw {
                    sub_edges.push((nv, nw));
                }
            }
        }
        sub_edges.sort_unstable();
        let sub = Graph::assemble(nodes.len(), sub_edges, Vec::new(), Vec::new(), Vec::new());
        (sub, nodes.to_vec())
    }

    /// Number of edges with both endpoints in `nodes` (`nodes` must be
    /// duplicate-free). Runs in `O(Σ deg)` over the set with one dense-bitset
    /// membership structure.
    pub fn induced_edge_count(&self, nodes: &[NodeId]) -> usize {
        let mark = NodeBitSet::from_members(self.num_nodes(), nodes);
        let mut cnt = 0;
        for &v in nodes {
            for &w in self.neighbors(v) {
                if v < w && mark.contains(w as usize) {
                    cnt += 1;
                }
            }
        }
        cnt
    }

    /// Connected components as sorted node lists, largest first.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut seen = NodeBitSet::new(n);
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if seen.contains(s) {
                continue;
            }
            seen.insert(s);
            stack.push(s as NodeId);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if seen.insert(w as usize) {
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        comps
    }

    /// Enumerates all triangles `(u, v, w)` with `u < v < w`.
    pub fn triangles(&self) -> Vec<(NodeId, NodeId, NodeId)> {
        let mut out = Vec::new();
        for &(u, v) in &self.edges {
            // Intersect neighbor rows, keeping only w > v to canonicalize.
            let (mut i, mut j) = (0, 0);
            let (nu, nv) = (self.neighbors(u), self.neighbors(v));
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            out.push((u, v, nu[i]));
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out
    }

    /// Common neighbors of `u` and `v` (sorted).
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let (mut i, mut j) = (0, 0);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(nu[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn basic_construction() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edge_list_is_canonical() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 0)]);
        assert_eq!(g.edges(), &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(g.edge_index(3, 2), Some(2));
        assert_eq!(g.edge_index(1, 3), None);
    }

    #[test]
    fn csr_rows_are_sorted_and_consistent() {
        let g = Graph::from_edges(5, &[(4, 0), (0, 1), (3, 0), (2, 4), (1, 3)]);
        assert_eq!(g.offsets().len(), 6);
        assert_eq!(g.arc_targets().len(), 2 * g.num_edges());
        for v in 0..5 {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} unsorted");
            assert_eq!(row.len(), g.degree(v));
            let (nbrs, eids) = g.neighbors_with_edge_ids(v);
            for (&w, &e) in nbrs.iter().zip(eids) {
                let (a, b) = g.edges()[e as usize];
                assert!((a, b) == (v.min(w), v.max(w)), "arc edge id mismatch");
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
    }

    #[test]
    fn builder_has_edge_and_counts() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0);
        assert!(b.has_edge(0, 2));
        assert!(!b.has_edge(0, 1));
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.num_edges(), 1);
        let g = b.build();
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn density() {
        assert_eq!(path3().edge_density(), 2.0 / 3.0);
        assert_eq!(Graph::new(0).edge_density(), 0.0);
        assert_eq!(Graph::new(5).edge_density(), 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let (sub, map) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(map, vec![1, 3, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // Edges among {1,3,4}: (1,3) and (3,4).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // 1-3
        assert!(sub.has_edge(1, 2)); // 3-4
        assert!(!sub.has_edge(0, 2)); // 1-4 absent
        assert_eq!(g.induced_edge_count(&[1, 3, 4]), 2);
    }

    #[test]
    fn filter_edges_selects_and_recycles() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let mut mask = DenseBitSet::new(4);
        mask.insert(0); // (0,1)
        mask.insert(3); // (2,3)
        let w = g.filter_edges(&mask, Graph::default());
        assert_eq!(w.num_nodes(), 4);
        assert_eq!(w.edges(), &[(0, 1), (2, 3)]);
        assert!(w.has_edge(0, 1));
        assert!(!w.has_edge(0, 2));
        // Recycle the world for a different mask.
        mask.clear();
        mask.insert(1);
        mask.insert(2);
        let w2 = g.filter_edges(&mask, w);
        assert_eq!(w2.edges(), &[(0, 2), (1, 2)]);
        assert_eq!(w2.degree(2), 2);
        assert_eq!(w2.degree(3), 0);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn triangles_k4() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let tris = g.triangles();
        assert_eq!(tris.len(), 4);
        assert!(tris.contains(&(0, 1, 2)));
        assert!(tris.contains(&(1, 2, 3)));
    }

    #[test]
    fn common_neighbors_sorted() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(g.common_neighbors(0, 1), vec![2, 3]);
        assert_eq!(g.common_neighbors(2, 3), vec![0, 1]);
    }
}
