//! Deterministic, undirected, unweighted graphs.
//!
//! Nodes are dense integer identifiers `0..n`. Edges are stored both as sorted
//! adjacency lists (for O(log d) membership tests) and as a canonical edge list
//! `(u, v)` with `u < v` (so the uncertain layer can attach one probability per
//! edge by index). Self-loops and parallel edges are rejected: the paper works
//! on simple graphs.

use serde::{Deserialize, Serialize};

/// Dense node identifier. `u32` keeps adjacency lists half the size of `usize`
/// on 64-bit targets, which matters for the million-edge synthetic datasets.
pub type NodeId = u32;

/// An undirected simple graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list. Node count is `n`; edges outside
    /// `0..n`, self-loops, and duplicates (in either orientation) are rejected.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Canonical edge list; every entry satisfies `u < v`.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Index of edge `(u, v)` in [`Graph::edges`], if present.
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&(a, b)).ok()
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges, and if
    /// edges are not added in canonical sorted order relative to existing ones
    /// is fine — insertion keeps both representations sorted.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self-loop ({u}, {v})");
        let n = self.num_nodes() as NodeId;
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for n = {n}");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos = self
            .edges
            .binary_search(&(a, b))
            .expect_err("duplicate edge");
        self.edges.insert(pos, (a, b));
        let pa = self.adj[a as usize].binary_search(&b).unwrap_err();
        self.adj[a as usize].insert(pa, b);
        let pb = self.adj[b as usize].binary_search(&a).unwrap_err();
        self.adj[b as usize].insert(pb, a);
    }

    /// Edge density `|E| / |V|` (paper Def. 1). Returns 0 for the empty graph.
    pub fn edge_density(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Subgraph induced by `nodes` (paper notation `G[W]`).
    ///
    /// Returns the induced graph with nodes relabelled `0..nodes.len()` in the
    /// order given, plus the mapping from new ids back to original ids.
    /// `nodes` must be duplicate-free.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut rename = vec![NodeId::MAX; self.num_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(
                rename[v as usize] == NodeId::MAX,
                "duplicate node {v} in induced_subgraph"
            );
            rename[v as usize] = i as NodeId;
        }
        let mut sub = Graph::new(nodes.len());
        for &v in nodes {
            let nv = rename[v as usize];
            for &w in self.neighbors(v) {
                let nw = rename[w as usize];
                if nw != NodeId::MAX && nv < nw {
                    sub.add_edge(nv, nw);
                }
            }
        }
        (sub, nodes.to_vec())
    }

    /// Number of edges with both endpoints in `nodes` (`nodes` must be
    /// duplicate-free). Runs in `O(Σ deg)` over the set.
    pub fn induced_edge_count(&self, nodes: &[NodeId]) -> usize {
        let mut mark = vec![false; self.num_nodes()];
        for &v in nodes {
            mark[v as usize] = true;
        }
        let mut cnt = 0;
        for &v in nodes {
            for &w in self.neighbors(v) {
                if v < w && mark[w as usize] {
                    cnt += 1;
                }
            }
        }
        cnt
    }

    /// Connected components as sorted node lists, largest first.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            stack.push(s as NodeId);
            let mut comp = Vec::new();
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
        comps
    }

    /// Enumerates all triangles `(u, v, w)` with `u < v < w`.
    pub fn triangles(&self) -> Vec<(NodeId, NodeId, NodeId)> {
        let mut out = Vec::new();
        for &(u, v) in &self.edges {
            // Intersect neighbor lists, keeping only w > v to canonicalize.
            let (mut i, mut j) = (0, 0);
            let (nu, nv) = (self.neighbors(u), self.neighbors(v));
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            out.push((u, v, nu[i]));
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out
    }

    /// Common neighbors of `u` and `v` (sorted).
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let (mut i, mut j) = (0, 0);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(nu[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn basic_construction() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edge_list_is_canonical() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 0)]);
        assert_eq!(g.edges(), &[(0, 1), (0, 2), (2, 3)]);
        assert_eq!(g.edge_index(3, 2), Some(2));
        assert_eq!(g.edge_index(1, 3), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn density() {
        assert_eq!(path3().edge_density(), 2.0 / 3.0);
        assert_eq!(Graph::new(0).edge_density(), 0.0);
        assert_eq!(Graph::new(5).edge_density(), 0.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let (sub, map) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(map, vec![1, 3, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // Edges among {1,3,4}: (1,3) and (3,4).
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // 1-3
        assert!(sub.has_edge(1, 2)); // 3-4
        assert!(!sub.has_edge(0, 2)); // 1-4 absent
        assert_eq!(g.induced_edge_count(&[1, 3, 4]), 2);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn triangles_k4() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let tris = g.triangles();
        assert_eq!(tris.len(), 4);
        assert!(tris.contains(&(0, 1, 2)));
        assert!(tris.contains(&(1, 2, 3)));
    }

    #[test]
    fn common_neighbors_sorted() {
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(g.common_neighbors(0, 1), vec![2, 3]);
        assert_eq!(g.common_neighbors(2, 3), vec![0, 1]);
    }
}
