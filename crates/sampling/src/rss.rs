//! Recursive Stratified Sampling \[55\].
//!
//! Worlds are generated in batches. A batch of size `B` is split across the
//! `2^r` joint assignments ("strata") of the next `r` pivot edges; each
//! stratum receives a share of the batch proportional to its probability
//! (floor allocation plus systematic sampling of the fractional remainders,
//! which keeps the per-edge presence frequencies exactly unbiased across
//! batches). Strata with large allocations recurse on the following `r`
//! edges; small ones fall back to Monte Carlo on their free edges.
//!
//! Compared to MC this reduces the estimator variance contributed by the
//! pivot edges, at the cost of batch buffering and recursion state — the
//! memory overhead the paper reports in Tables XIII–XIV.

use crate::WorldSampler;
use rand::rngs::StdRng;
use rand::Rng;
use ugraph::{EdgeMask, UncertainGraph};

/// Batched recursive stratified sampler.
pub struct RecursiveStratified {
    probs: Vec<f64>,
    /// Pivot edges per recursion level.
    r: usize,
    batch_size: usize,
    /// Minimum allocation for which a stratum recurses further.
    recurse_threshold: usize,
    queue: Vec<Vec<bool>>,
    rng: StdRng,
    /// High-water mark of recursion depth (memory accounting).
    max_depth_seen: usize,
}

impl RecursiveStratified {
    /// Creates a sampler stratifying on `r` pivot edges per level
    /// (`1 ≤ r ≤ 6`).
    pub fn new(g: &UncertainGraph, r: usize, rng: StdRng) -> Self {
        assert!((1..=6).contains(&r));
        RecursiveStratified {
            probs: g.probs().to_vec(),
            r,
            batch_size: 128,
            recurse_threshold: 32,
            queue: Vec::new(),
            rng,
            max_depth_seen: 0,
        }
    }

    fn refill(&mut self) {
        let m = self.probs.len();
        let mut batch: Vec<Vec<bool>> = Vec::with_capacity(self.batch_size);
        let prefix = vec![false; m];
        let batch_size = self.batch_size;
        self.generate(&prefix, 0, batch_size, 0, &mut batch);
        // Shuffle so within-batch stratum ordering cannot correlate with
        // consumption order.
        for i in (1..batch.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            batch.swap(i, j);
        }
        self.queue = batch;
    }

    /// Generates `count` masks whose edges `..start` are fixed to `prefix`.
    fn generate(
        &mut self,
        prefix: &[bool],
        start: usize,
        count: usize,
        depth: usize,
        out: &mut Vec<Vec<bool>>,
    ) {
        if count == 0 {
            return;
        }
        self.max_depth_seen = self.max_depth_seen.max(depth);
        let m = self.probs.len();
        let remaining = m - start;
        if remaining == 0 || count < self.recurse_threshold {
            // Monte Carlo fill of the free edges.
            for _ in 0..count {
                let mut mask = prefix.to_vec();
                for (e, slot) in mask.iter_mut().enumerate().skip(start) {
                    *slot = self.rng.gen_bool(self.probs[e]);
                }
                out.push(mask);
            }
            return;
        }
        let r = self.r.min(remaining);
        let strata = 1usize << r;
        // Stratum probabilities: product over pivot assignments.
        let mut q = vec![0f64; strata];
        for (j, qj) in q.iter_mut().enumerate() {
            let mut p = 1.0;
            for (b, &pe) in self.probs[start..start + r].iter().enumerate() {
                p *= if j >> b & 1 == 1 { pe } else { 1.0 - pe };
            }
            *qj = p;
        }
        // Proportional allocation: floors + systematic sampling of fractions
        // (inclusion probability of each extra = fractional part, keeping
        // E[n_j] = count * q_j exactly).
        let mut alloc = vec![0usize; strata];
        let mut fracs = vec![0f64; strata];
        for j in 0..strata {
            let c = count as f64 * q[j];
            alloc[j] = c.floor() as usize;
            fracs[j] = c - c.floor();
        }
        let mut threshold: f64 = self.rng.gen();
        let mut cum = 0.0;
        for j in 0..strata {
            cum += fracs[j];
            while threshold < cum {
                alloc[j] += 1;
                threshold += 1.0;
            }
        }
        for (j, &nj) in alloc.iter().enumerate() {
            if nj == 0 {
                continue;
            }
            let mut sub_prefix = prefix.to_vec();
            for b in 0..r {
                sub_prefix[start + b] = j >> b & 1 == 1;
            }
            self.generate(&sub_prefix, start + r, nj, depth + 1, out);
        }
    }
}

impl WorldSampler for RecursiveStratified {
    fn num_edges(&self) -> usize {
        self.probs.len()
    }

    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        if self.queue.is_empty() {
            self.refill();
        }
        let next = self.queue.pop().expect("refill produced a non-empty batch");
        mask.fill_from_bools(&next);
    }

    fn next_mask(&mut self) -> Vec<bool> {
        if self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop().expect("refill produced a non-empty batch")
    }

    fn aux_memory_bytes(&self) -> usize {
        let m = self.probs.len();
        m * std::mem::size_of::<f64>()                       // probabilities
            + self.batch_size * m                            // buffered masks
            + (self.max_depth_seen.max(1)) * (m + (1 << self.r) * 24) // recursion
    }

    fn name(&self) -> &'static str {
        "RSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn graph(probs: &[f64]) -> UncertainGraph {
        let edges: Vec<(u32, u32, f64)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, i as u32 + 1, p))
            .collect();
        UncertainGraph::from_weighted_edges(probs.len() + 1, &edges)
    }

    #[test]
    fn batch_is_exactly_consumed() {
        let g = graph(&[0.5, 0.5]);
        let mut rss = RecursiveStratified::new(&g, 2, StdRng::seed_from_u64(1));
        for _ in 0..500 {
            let mask = rss.next_mask();
            assert_eq!(mask.len(), 2);
        }
    }

    #[test]
    fn pivot_edge_variance_is_reduced() {
        // Frequency of a pivot edge over exactly one batch should be closer
        // to p than iid MC typically is: with proportional allocation the
        // batch count differs from B*p by at most the systematic-sampling
        // remainder (1 sample).
        let g = graph(&[0.3, 0.6, 0.5]);
        let mut rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(2));
        let batch: Vec<Vec<bool>> = (0..128).map(|_| rss.next_mask()).collect();
        let count0 = batch.iter().filter(|m| m[0]).count() as f64;
        // E = 128 * 0.3 = 38.4; allocation error <= 2^r extra samples spread
        // across strata, but the edge-0 marginal error is at most the number
        // of fractional allocations, bounded by a few samples.
        assert!(
            (count0 - 38.4).abs() <= 4.0,
            "stratified count {count0} strays from 38.4"
        );
    }

    #[test]
    fn deep_graphs_recurse() {
        let probs: Vec<f64> = (0..12).map(|i| 0.2 + 0.05 * i as f64).collect();
        let g = graph(&probs);
        let mut rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(3));
        for _ in 0..256 {
            rss.next_mask();
        }
        assert!(rss.max_depth_seen >= 1);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_r() {
        let g = graph(&[0.5]);
        RecursiveStratified::new(&g, 0, StdRng::seed_from_u64(1));
    }
}
