//! Monte Carlo sampling: one independent Bernoulli flip per edge per world.
//! The paper's default strategy (§III-A) — no auxiliary state at all.

use crate::WorldSampler;
use rand::rngs::StdRng;
use rand::Rng;
use ugraph::UncertainGraph;

/// Independent per-edge Bernoulli sampler.
pub struct MonteCarlo {
    probs: Vec<f64>,
    rng: StdRng,
}

impl MonteCarlo {
    /// Builds a sampler over `g`'s edge probabilities, consuming `rng`.
    pub fn new(g: &UncertainGraph, rng: StdRng) -> Self {
        MonteCarlo {
            probs: g.probs().to_vec(),
            rng,
        }
    }
}

impl WorldSampler for MonteCarlo {
    fn next_mask(&mut self) -> Vec<bool> {
        self.probs.iter().map(|&p| self.rng.gen_bool(p)).collect()
    }

    fn aux_memory_bytes(&self) -> usize {
        // Only the probability copy (counted for comparability across
        // samplers, which all hold one).
        self.probs.len() * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "MC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let mut a = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
        let mut b = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
        for _ in 0..50 {
            assert_eq!(a.next_mask(), b.next_mask());
        }
    }

    #[test]
    fn certain_edges_always_present() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)]);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(7));
        for _ in 0..100 {
            assert!(mc.next_mask()[0]);
        }
    }
}
