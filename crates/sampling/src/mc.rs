//! Monte Carlo sampling: one independent Bernoulli flip per edge per world.
//! The paper's default strategy (§III-A) — no auxiliary state at all.

use crate::{stream_seed, WorldSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugraph::{EdgeMask, UncertainGraph};

/// Independent per-edge Bernoulli sampler.
pub struct MonteCarlo {
    probs: Vec<f64>,
    rng: StdRng,
}

impl MonteCarlo {
    /// Builds a sampler over `g`'s edge probabilities, consuming `rng`.
    pub fn new(g: &UncertainGraph, rng: StdRng) -> Self {
        MonteCarlo {
            probs: g.probs().to_vec(),
            rng,
        }
    }

    /// Builds the sampler for sub-stream `stream` of the root seed — the
    /// supported way to split a sample budget into independent batches.
    ///
    /// Seeding batch `i` with `root + i` looks harmless but correlates whole
    /// experiments: runs rooted at `r` and `r + 1` share all but one of their
    /// batch streams. [`stream_seed`] decorrelates every `(root, stream)`
    /// pair instead.
    pub fn with_stream(g: &UncertainGraph, root_seed: u64, stream: u64) -> Self {
        MonteCarlo::new(g, StdRng::seed_from_u64(stream_seed(root_seed, stream)))
    }
}

impl WorldSampler for MonteCarlo {
    fn num_edges(&self) -> usize {
        self.probs.len()
    }

    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        mask.reset(self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            if self.rng.gen_bool(p) {
                mask.insert(i);
            }
        }
    }

    fn aux_memory_bytes(&self) -> usize {
        // Only the probability copy (counted for comparability across
        // samplers, which all hold one).
        self.probs.len() * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "MC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 0.5), (1, 2, 0.5)]);
        let mut a = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
        let mut b = MonteCarlo::new(&g, StdRng::seed_from_u64(5));
        for _ in 0..50 {
            assert_eq!(a.next_mask(), b.next_mask());
        }
    }

    #[test]
    fn certain_edges_always_present() {
        let g = UncertainGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.5)]);
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(7));
        for _ in 0..100 {
            assert!(mc.next_mask()[0]);
        }
    }

    #[test]
    fn mask_into_matches_vec_path() {
        let g = UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.3), (0, 2, 0.7), (1, 3, 0.5), (2, 3, 0.9)],
        );
        let mut a = MonteCarlo::new(&g, StdRng::seed_from_u64(11));
        let mut b = MonteCarlo::new(&g, StdRng::seed_from_u64(11));
        let mut mask = EdgeMask::new(0);
        for _ in 0..200 {
            a.next_mask_into(&mut mask);
            assert_eq!(mask.to_bools(), b.next_mask());
        }
    }

    /// Regression test for the batch-correlation bug: deriving batch `i`'s
    /// stream as `root + i` made run(root=1)'s batch 1 identical to
    /// run(root=2)'s batch 0. `with_stream` must keep such pairs disjoint.
    #[test]
    fn adjacent_roots_do_not_share_batch_streams() {
        let edges: Vec<(u32, u32, f64)> = (0..32).map(|i| (i, i + 1, 0.5)).collect();
        let g = UncertainGraph::from_weighted_edges(33, &edges);
        let draw = |root: u64, stream: u64| -> Vec<Vec<bool>> {
            let mut mc = MonteCarlo::with_stream(&g, root, stream);
            (0..16).map(|_| mc.next_mask()).collect()
        };
        // The offending overlap pattern under the old scheme:
        assert_ne!(draw(1, 1), draw(2, 0));
        assert_ne!(draw(7, 3), draw(8, 2));
        // And sub-streams of one root are mutually distinct...
        assert_ne!(draw(1, 0), draw(1, 1));
        // ...while remaining reproducible.
        assert_eq!(draw(1, 1), draw(1, 1));
    }

    #[test]
    fn stream_seed_has_no_additive_structure() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for root in 0..64u64 {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(stream_seed(root, stream)),
                    "collision at ({root}, {stream})"
                );
            }
        }
    }
}
