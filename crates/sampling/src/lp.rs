//! Lazy Propagation sampling \[54\]: geometric skip-ahead per edge.
//!
//! Instead of flipping each edge in every round, each edge pre-draws the
//! round index at which it will next be *present* (a geometric variable with
//! success probability `p(e)`), and the per-round work is a comparison plus
//! an occasional re-draw. The per-edge counters are the extra state the paper
//! attributes to LP ("the visit frequencies of all edges need to be stored
//! and updated"), explaining its higher memory and slightly lower runtime in
//! Tables XIII–XIV.

use crate::WorldSampler;
use rand::rngs::StdRng;
use rand::Rng;
use ugraph::{EdgeMask, UncertainGraph};

/// Geometric skip-ahead sampler.
pub struct LazyPropagation {
    probs: Vec<f64>,
    /// Round at which each edge is next present.
    next_present: Vec<u64>,
    round: u64,
    rng: StdRng,
}

impl LazyPropagation {
    /// Builds a sampler over `g`'s edge probabilities, consuming `rng`.
    pub fn new(g: &UncertainGraph, mut rng: StdRng) -> Self {
        let probs = g.probs().to_vec();
        let next_present = probs.iter().map(|&p| geometric_skip(&mut rng, p)).collect();
        LazyPropagation {
            probs,
            next_present,
            round: 0,
            rng,
        }
    }
}

/// Draws `G ~ Geometric(p)` as the number of additional rounds until the
/// next success (0 = present in the current round).
fn geometric_skip(rng: &mut StdRng, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    // Inverse-transform sampling: floor(ln(U) / ln(1 - p)).
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

impl WorldSampler for LazyPropagation {
    fn num_edges(&self) -> usize {
        self.probs.len()
    }

    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        mask.reset(self.probs.len());
        let round = self.round;
        for (i, (next, &p)) in self.next_present.iter_mut().zip(&self.probs).enumerate() {
            if *next == round {
                // Present now; schedule the next presence.
                *next = round + 1 + geometric_skip(&mut self.rng, p);
                mask.insert(i);
            }
        }
        self.round += 1;
    }

    fn aux_memory_bytes(&self) -> usize {
        self.probs.len() * std::mem::size_of::<f64>()
            + self.next_present.len() * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "LP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn certain_edge_every_round() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 1.0)]);
        let mut lp = LazyPropagation::new(&g, StdRng::seed_from_u64(3));
        for _ in 0..50 {
            assert!(lp.next_mask()[0]);
        }
    }

    #[test]
    fn frequency_converges_for_small_p() {
        let g = UncertainGraph::from_weighted_edges(2, &[(0, 1, 0.1)]);
        let mut lp = LazyPropagation::new(&g, StdRng::seed_from_u64(4));
        let rounds = 50_000;
        let hits = (0..rounds).filter(|_| lp.next_mask()[0]).count();
        let freq = hits as f64 / rounds as f64;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn geometric_skip_zero_for_p_one() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(geometric_skip(&mut rng, 1.0), 0);
    }
}
