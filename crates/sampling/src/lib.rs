//! Possible-world samplers for uncertain graphs (paper §III-A remark 2 and
//! §VI-G "Varying sampling strategies").
//!
//! All MPDS/NDS estimators consume a stream of possible worlds. The paper
//! compares three ways to produce that stream:
//!
//! * **Monte Carlo (MC)** — flip every edge independently per world; lowest
//!   memory, the paper's default.
//! * **Lazy Propagation (LP)** \[54\] — per-edge geometric skip counters: each
//!   edge pre-draws the index of the next world in which it is present, so a
//!   world materializes without one RNG call per edge. Extra per-edge state
//!   (the paper: "the visit frequencies of all edges need to be stored and
//!   updated", raising memory).
//! * **Recursive Stratified Sampling (RSS)** \[55\] — condition on `r` pivot
//!   edges per recursion level, enumerate the `2^r` strata, and allocate the
//!   sample budget proportionally to stratum probability; lower variance at
//!   the cost of recursion memory.
//!
//! Each sampler yields `(mask, Graph)` pairs; masks are bit-per-edge vectors
//! aligned with [`UncertainGraph`]'s canonical edge order. Samplers report an
//! estimate of their auxiliary memory so the Tables XIII–XIV experiment can
//! reproduce the paper's memory comparison.

pub mod lp;
pub mod mc;
pub mod rss;

use ugraph::{Graph, UncertainGraph};

pub use lp::LazyPropagation;
pub use mc::MonteCarlo;
pub use rss::RecursiveStratified;

/// A source of sampled possible worlds.
pub trait WorldSampler {
    /// Draws the next possible world as an edge-presence mask.
    fn next_mask(&mut self) -> Vec<bool>;

    /// Auxiliary memory held by the sampler, in bytes (beyond the uncertain
    /// graph itself). Used by the sampling-strategy comparison experiment.
    fn aux_memory_bytes(&self) -> usize;

    /// Human-readable strategy name.
    fn name(&self) -> &'static str;
}

impl<S: WorldSampler + ?Sized> WorldSampler for &mut S {
    fn next_mask(&mut self) -> Vec<bool> {
        (**self).next_mask()
    }
    fn aux_memory_bytes(&self) -> usize {
        (**self).aux_memory_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: WorldSampler + ?Sized> WorldSampler for Box<S> {
    fn next_mask(&mut self) -> Vec<bool> {
        (**self).next_mask()
    }
    fn aux_memory_bytes(&self) -> usize {
        (**self).aux_memory_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Materializes the next world as a [`Graph`].
pub fn next_world<S: WorldSampler>(sampler: &mut S, g: &UncertainGraph) -> (Vec<bool>, Graph) {
    let mask = sampler.next_mask();
    let world = g.world_from_mask(&mask);
    (mask, world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::UncertainGraph;

    fn demo_graph() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.9), (0, 2, 0.5), (1, 2, 0.2), (2, 3, 0.7)],
        )
    }

    /// Empirical edge frequencies of every sampler must converge to p(e).
    #[test]
    fn all_samplers_are_unbiased() {
        let g = demo_graph();
        let rounds = 20_000usize;
        let tol = 0.02;
        let check = |name: &str, freqs: Vec<f64>| {
            for (i, (&f, &p)) in freqs.iter().zip(g.probs()).enumerate() {
                assert!(
                    (f - p).abs() < tol,
                    "{name}: edge {i} frequency {f} vs p {p}"
                );
            }
        };

        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        check("mc", empirical(&mut mc, g.num_edges(), rounds));

        let mut lp = LazyPropagation::new(&g, StdRng::seed_from_u64(2));
        check("lp", empirical(&mut lp, g.num_edges(), rounds));

        let mut rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(3));
        check("rss", empirical(&mut rss, g.num_edges(), rounds));
    }

    fn empirical<S: WorldSampler>(s: &mut S, m: usize, rounds: usize) -> Vec<f64> {
        let mut counts = vec![0usize; m];
        for _ in 0..rounds {
            let mask = s.next_mask();
            for (i, &b) in mask.iter().enumerate() {
                if b {
                    counts[i] += 1;
                }
            }
        }
        counts.iter().map(|&c| c as f64 / rounds as f64).collect()
    }

    #[test]
    fn memory_ordering_matches_paper() {
        // Paper Tables XIII–XIV: MC consumes the least memory, RSS the most.
        let g = demo_graph();
        let mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let lp = LazyPropagation::new(&g, StdRng::seed_from_u64(1));
        let rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(1));
        assert!(mc.aux_memory_bytes() < lp.aux_memory_bytes());
        assert!(lp.aux_memory_bytes() < rss.aux_memory_bytes());
    }

    #[test]
    fn next_world_materializes() {
        let g = demo_graph();
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
        let (mask, world) = next_world(&mut mc, &g);
        assert_eq!(mask.len(), 4);
        assert_eq!(world.num_nodes(), 4);
        assert_eq!(world.num_edges(), mask.iter().filter(|&&b| b).count());
    }
}
