//! Possible-world samplers for uncertain graphs (paper §III-A remark 2 and
//! §VI-G "Varying sampling strategies").
//!
//! All MPDS/NDS estimators consume a stream of possible worlds. The paper
//! compares three ways to produce that stream:
//!
//! * **Monte Carlo (MC)** — flip every edge independently per world; lowest
//!   memory, the paper's default.
//! * **Lazy Propagation (LP)** \[54\] — per-edge geometric skip counters: each
//!   edge pre-draws the index of the next world in which it is present, so a
//!   world materializes without one RNG call per edge. Extra per-edge state
//!   (the paper: "the visit frequencies of all edges need to be stored and
//!   updated", raising memory).
//! * **Recursive Stratified Sampling (RSS)** \[55\] — condition on `r` pivot
//!   edges per recursion level, enumerate the `2^r` strata, and allocate the
//!   sample budget proportionally to stratum probability; lower variance at
//!   the cost of recursion memory.
//!
//! Each sampler fills a preallocated [`EdgeMask`] bitmap aligned with
//! [`UncertainGraph`]'s canonical edge order ([`WorldSampler::next_mask_into`];
//! the bitmap is reused across samples so the steady-state per-world cost is
//! RNG draws only). [`next_world_reusing`] pairs that with CSR world
//! materialization that recycles the previous world's backing storage.
//! Samplers report an estimate of their auxiliary memory so the
//! Tables XIII–XIV experiment can reproduce the paper's memory comparison.

pub mod lp;
pub mod mc;
pub mod rss;

use ugraph::{EdgeMask, Graph, UncertainGraph};

pub use lp::LazyPropagation;
pub use mc::MonteCarlo;
pub use rss::RecursiveStratified;

/// Derives a decorrelated RNG seed for sub-stream `stream` of `root`.
///
/// Callers that split their sample budget into batches (parallel workers,
/// restartable chunks) must NOT seed batch `i` with `root + i`: two runs with
/// roots `r` and `r + 1` would then share all but one of their streams, so
/// "independent" experiments silently reuse the same worlds. This mixes both
/// words through a SplitMix64-style finalizer so every `(root, stream)` pair
/// lands in an unrelated region of the seed space.
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    mix(mix(root.wrapping_add(0x9e37_79b9_7f4a_7c15))
        ^ mix(stream.wrapping_mul(0xd134_2543_de82_ef95).wrapping_add(1)))
}

/// A source of sampled possible worlds.
pub trait WorldSampler {
    /// Number of edges in the sampled masks (the mask universe).
    fn num_edges(&self) -> usize;

    /// Draws the next possible world into a preallocated edge-presence
    /// bitmap. The mask is re-targeted to [`WorldSampler::num_edges`] and
    /// fully overwritten; reusing one mask across calls avoids the per-world
    /// `Vec<bool>` allocation of [`WorldSampler::next_mask`].
    fn next_mask_into(&mut self, mask: &mut EdgeMask);

    /// Draws the next possible world as a `bool`-per-edge vector (allocating
    /// convenience wrapper over [`WorldSampler::next_mask_into`]).
    fn next_mask(&mut self) -> Vec<bool> {
        let mut mask = EdgeMask::new(self.num_edges());
        self.next_mask_into(&mut mask);
        mask.to_bools()
    }

    /// Auxiliary memory held by the sampler, in bytes (beyond the uncertain
    /// graph itself). Used by the sampling-strategy comparison experiment.
    fn aux_memory_bytes(&self) -> usize;

    /// Human-readable strategy name.
    fn name(&self) -> &'static str;
}

impl<S: WorldSampler + ?Sized> WorldSampler for &mut S {
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        (**self).next_mask_into(mask)
    }
    fn next_mask(&mut self) -> Vec<bool> {
        (**self).next_mask()
    }
    fn aux_memory_bytes(&self) -> usize {
        (**self).aux_memory_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: WorldSampler + ?Sized> WorldSampler for Box<S> {
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }
    fn next_mask_into(&mut self, mask: &mut EdgeMask) {
        (**self).next_mask_into(mask)
    }
    fn next_mask(&mut self) -> Vec<bool> {
        (**self).next_mask()
    }
    fn aux_memory_bytes(&self) -> usize {
        (**self).aux_memory_bytes()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Materializes the next world as a [`Graph`].
pub fn next_world<S: WorldSampler>(sampler: &mut S, g: &UncertainGraph) -> (Vec<bool>, Graph) {
    let mask = sampler.next_mask();
    let world = g.world_from_mask(&mask);
    (mask, world)
}

/// Materializes the next world into recycled storage: the sampler fills the
/// preallocated `mask` bitmap and the returned [`Graph`] reuses `recycle`'s
/// CSR arrays. The steady-state loop
/// `world = next_world_reusing(&mut s, &g, &mut mask, world)` performs no
/// heap allocation per sample.
pub fn next_world_reusing<S: WorldSampler>(
    sampler: &mut S,
    g: &UncertainGraph,
    mask: &mut EdgeMask,
    recycle: Graph,
) -> Graph {
    sampler.next_mask_into(mask);
    g.world_from_bitmap(mask, recycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ugraph::UncertainGraph;

    fn demo_graph() -> UncertainGraph {
        UncertainGraph::from_weighted_edges(
            4,
            &[(0, 1, 0.9), (0, 2, 0.5), (1, 2, 0.2), (2, 3, 0.7)],
        )
    }

    /// Empirical edge frequencies of every sampler must converge to p(e).
    #[test]
    fn all_samplers_are_unbiased() {
        let g = demo_graph();
        let rounds = 20_000usize;
        let tol = 0.02;
        let check = |name: &str, freqs: Vec<f64>| {
            for (i, (&f, &p)) in freqs.iter().zip(g.probs()).enumerate() {
                assert!(
                    (f - p).abs() < tol,
                    "{name}: edge {i} frequency {f} vs p {p}"
                );
            }
        };

        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        check("mc", empirical(&mut mc, g.num_edges(), rounds));

        let mut lp = LazyPropagation::new(&g, StdRng::seed_from_u64(2));
        check("lp", empirical(&mut lp, g.num_edges(), rounds));

        let mut rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(3));
        check("rss", empirical(&mut rss, g.num_edges(), rounds));
    }

    fn empirical<S: WorldSampler>(s: &mut S, m: usize, rounds: usize) -> Vec<f64> {
        let mut counts = vec![0usize; m];
        for _ in 0..rounds {
            let mask = s.next_mask();
            for (i, &b) in mask.iter().enumerate() {
                if b {
                    counts[i] += 1;
                }
            }
        }
        counts.iter().map(|&c| c as f64 / rounds as f64).collect()
    }

    #[test]
    fn memory_ordering_matches_paper() {
        // Paper Tables XIII–XIV: MC consumes the least memory, RSS the most.
        let g = demo_graph();
        let mc = MonteCarlo::new(&g, StdRng::seed_from_u64(1));
        let lp = LazyPropagation::new(&g, StdRng::seed_from_u64(1));
        let rss = RecursiveStratified::new(&g, 3, StdRng::seed_from_u64(1));
        assert!(mc.aux_memory_bytes() < lp.aux_memory_bytes());
        assert!(lp.aux_memory_bytes() < rss.aux_memory_bytes());
    }

    #[test]
    fn next_world_materializes() {
        let g = demo_graph();
        let mut mc = MonteCarlo::new(&g, StdRng::seed_from_u64(9));
        let (mask, world) = next_world(&mut mc, &g);
        assert_eq!(mask.len(), 4);
        assert_eq!(world.num_nodes(), 4);
        assert_eq!(world.num_edges(), mask.iter().filter(|&&b| b).count());
    }
}
