//! Dinic's maximum-flow algorithm over integer capacities.
//!
//! Edges are stored in the usual paired layout: edge `2i` is the forward arc
//! and edge `2i + 1` its reverse, so residual updates are branch-free
//! (`cap[e ^ 1] += f`). Capacities are `u64`; "infinite" capacity is the
//! sentinel [`INF`], chosen so that sums of many infinite arcs cannot
//! overflow.
//!
//! Out-arcs are kept in CSR form (`start` offsets into one contiguous
//! `order` array) rather than per-node `Vec`s, so the BFS/DFS inner loops
//! scan cache-resident slices. The CSR index is (re)built lazily — arcs can
//! be added at any time and [`FlowNetwork::max_flow`] freezes the adjacency
//! before running; the counting sort is stable, preserving per-node arc
//! insertion order.

/// Effectively infinite capacity (≈ 4.6e18 / 4). Large enough to dominate any
/// finite cut in the paper's constructions, small enough that adding a few
/// thousand of them to a real capacity cannot overflow `u64`.
pub const INF: u64 = u64::MAX / 4;

/// A flow network over nodes `0..n` with `u64` capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Number of nodes.
    n: usize,
    /// Head node of each arc.
    to: Vec<u32>,
    /// Tail node of each arc (used to build the CSR index).
    tail: Vec<u32>,
    /// Residual capacity of each arc (mutated by `max_flow`).
    cap: Vec<u64>,
    /// Original capacity of each arc.
    orig: Vec<u64>,
    /// CSR offsets: arcs leaving node `v` are `order[start[v]..start[v+1]]`.
    /// Valid only while `frozen`.
    start: Vec<u32>,
    /// Arc indices grouped by tail node, insertion order within each node.
    order: Vec<u32>,
    /// Whether `start`/`order` reflect the current arc set.
    frozen: bool,
    // Scratch buffers reused across BFS/DFS phases.
    level: Vec<u32>,
    iter: Vec<u32>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            tail: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
            start: vec![0; n + 1],
            order: Vec::new(),
            frozen: true,
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed arcs (including reverse arcs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.to.len()
    }

    /// Adds a directed edge `u → v` with capacity `cap` and its reverse arc
    /// `v → u` with capacity `rev_cap` (commonly 0). Returns the forward arc
    /// index; the reverse arc is `index ^ 1`.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64, rev_cap: u64) -> usize {
        assert!(u < self.num_nodes() && v < self.num_nodes());
        assert_ne!(u, v, "self-loop arcs are never useful in these networks");
        let e = self.to.len();
        self.to.push(v as u32);
        self.tail.push(u as u32);
        self.cap.push(cap);
        self.orig.push(cap);
        self.to.push(u as u32);
        self.tail.push(v as u32);
        self.cap.push(rev_cap);
        self.orig.push(rev_cap);
        self.frozen = false;
        e
    }

    /// Rebuilds the CSR adjacency index. Called automatically by
    /// [`FlowNetwork::max_flow`]; idempotent once built. A stable counting
    /// sort of arc ids by tail node keeps the per-node arc order equal to
    /// insertion order.
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        let n = self.n;
        self.start.clear();
        self.start.resize(n + 1, 0);
        for &t in &self.tail {
            self.start[t as usize + 1] += 1;
        }
        for v in 0..n {
            self.start[v + 1] += self.start[v];
        }
        self.order.clear();
        self.order.resize(self.to.len(), 0);
        let mut cursor: Vec<u32> = self.start[..n].to_vec();
        for (a, &t) in self.tail.iter().enumerate() {
            let c = cursor[t as usize] as usize;
            self.order[c] = a as u32;
            cursor[t as usize] += 1;
        }
        self.frozen = true;
    }

    /// Arc ids leaving `v` (requires a frozen index).
    #[inline]
    fn arcs_from(&self, v: usize) -> &[u32] {
        debug_assert!(self.frozen, "CSR index stale: call freeze()");
        &self.order[self.start[v] as usize..self.start[v + 1] as usize]
    }

    /// Current flow on the forward arc `e` (original capacity minus residual).
    #[inline]
    pub fn flow(&self, e: usize) -> u64 {
        self.orig[e] - self.cap[e]
    }

    /// Residual capacity of arc `e`.
    #[inline]
    pub fn residual(&self, e: usize) -> u64 {
        self.cap[e]
    }

    /// Computes a maximum `s`–`t` flow with Dinic's algorithm and returns its
    /// value. Residual capacities are left in place for cut extraction.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t);
        self.freeze();
        let mut total = 0u64;
        let mut queue = std::collections::VecDeque::new();
        loop {
            // BFS: build level graph.
            self.level.iter_mut().for_each(|l| *l = u32::MAX);
            self.level[s] = 0;
            queue.clear();
            queue.push_back(s as u32);
            while let Some(v) = queue.pop_front() {
                let row = self.start[v as usize] as usize..self.start[v as usize + 1] as usize;
                for i in row {
                    let e = self.order[i];
                    let w = self.to[e as usize];
                    if self.cap[e as usize] > 0 && self.level[w as usize] == u32::MAX {
                        self.level[w as usize] = self.level[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            if self.level[t] == u32::MAX {
                return total;
            }
            // Blocking flow via iterative DFS with the current-arc optimization.
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs_augment(s, t);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
    }

    /// Finds one augmenting path in the level graph and pushes flow along it.
    /// Returns the pushed amount (0 when the blocking flow is complete).
    fn dfs_augment(&mut self, s: usize, t: usize) -> u64 {
        // Iterative DFS storing the path of arcs taken.
        let mut path: Vec<u32> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                // Bottleneck along the path, then push.
                let mut f = u64::MAX;
                for &e in &path {
                    f = f.min(self.cap[e as usize]);
                }
                debug_assert!(f > 0);
                for &e in &path {
                    self.cap[e as usize] -= f;
                    self.cap[e as usize ^ 1] += f;
                }
                return f;
            }
            let mut advanced = false;
            let row_len = (self.start[v + 1] - self.start[v]) as usize;
            while (self.iter[v] as usize) < row_len {
                let e = self.order[self.start[v] as usize + self.iter[v] as usize];
                let w = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && self.level[w] == self.level[v] + 1 {
                    path.push(e);
                    v = w;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: mark the node unusable in this phase and backtrack.
            self.level[v] = u32::MAX;
            match path.pop() {
                Some(e) => {
                    v = self.to[e as usize ^ 1] as usize;
                    self.iter[v] += 1;
                }
                None => return 0,
            }
        }
    }

    /// Nodes reachable from `s` through arcs with positive residual capacity
    /// (the source side of the *minimal* minimum cut). Call after `max_flow`.
    pub fn reachable_from(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            self.for_each_arc_from(v, |e| {
                let w = self.to[e] as usize;
                if self.cap[e] > 0 && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            });
        }
        seen
    }

    /// Calls `f` with every arc id leaving `v`. Uses the CSR index when
    /// frozen; otherwise falls back to a full arc scan (cold paths only —
    /// every flow computation freezes the index first).
    fn for_each_arc_from(&self, v: usize, mut f: impl FnMut(usize)) {
        if self.frozen {
            for &e in self.arcs_from(v) {
                f(e as usize);
            }
        } else {
            for (e, &t) in self.tail.iter().enumerate() {
                if t as usize == v {
                    f(e);
                }
            }
        }
    }

    /// Nodes that can reach `t` through residual arcs. The complement is the
    /// source side of the *maximal* minimum cut — how the maximum-sized
    /// densest subgraph is extracted (paper footnote 5 / \[59\]).
    pub fn can_reach(&self, t: usize) -> Vec<bool> {
        // Reverse BFS: v can reach t iff some residual arc v → w with w ⇝ t.
        // Walk reverse arcs: arc e: v → w has residual cap[e] > 0; from w we
        // must find v, i.e. iterate arcs incident to w and check their pair.
        let mut seen = vec![false; self.num_nodes()];
        seen[t] = true;
        let mut stack = vec![t];
        while let Some(w) = stack.pop() {
            self.for_each_arc_from(w, |e| {
                // Arc e: w → v. Its pair e^1: v → w has residual cap[e^1].
                let v = self.to[e] as usize;
                if self.cap[e ^ 1] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            });
        }
        seen
    }

    /// Residual out-neighbors of `v` (deduplicated), for building the residual
    /// graph handed to the SCC decomposition.
    pub fn residual_successors(&self, v: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        self.for_each_arc_from(v, |e| {
            if self.cap[e] > 0 {
                out.push(self.to[e]);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The full residual graph as adjacency lists (deduplicated).
    pub fn residual_graph(&self) -> Vec<Vec<u32>> {
        (0..self.num_nodes())
            .map(|v| self.residual_successors(v))
            .collect()
    }

    /// Resets all residual capacities to the original capacities, undoing any
    /// flow. Lets one network be re-used across binary-search iterations that
    /// only retune a few capacities via [`FlowNetwork::set_capacity`].
    pub fn reset(&mut self) {
        self.cap.copy_from_slice(&self.orig);
    }

    /// Overwrites the capacity of arc `e` (both original and residual).
    /// Typically used on `v → t` arcs during the binary search on α.
    pub fn set_capacity(&mut self, e: usize, cap: u64) {
        self.cap[e] = cap;
        self.orig[e] = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut f = FlowNetwork::new(2);
        f.add_edge(0, 1, 5, 0);
        assert_eq!(f.max_flow(0, 1), 5);
    }

    #[test]
    fn classic_diamond() {
        // s=0, t=3; two paths of capacity 10 and 10 sharing a middle edge 1->2
        // of capacity 5 gives flow 25 on the textbook example.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 10, 0);
        f.add_edge(0, 2, 10, 0);
        f.add_edge(1, 2, 5, 0);
        f.add_edge(1, 3, 10, 0);
        f.add_edge(2, 3, 10, 0);
        assert_eq!(f.max_flow(0, 3), 20);
    }

    #[test]
    fn respects_bottleneck() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 100, 0);
        f.add_edge(1, 2, 1, 0);
        f.add_edge(2, 3, 100, 0);
        assert_eq!(f.max_flow(0, 3), 1);
    }

    #[test]
    fn disconnected_sink() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 7, 0);
        assert_eq!(f.max_flow(0, 2), 0);
    }

    #[test]
    fn bidirectional_edge_via_rev_cap() {
        // An undirected edge of capacity 3 modelled as cap/rev_cap = 3/3.
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 3, 3);
        f.add_edge(1, 2, 2, 2);
        assert_eq!(f.max_flow(0, 2), 2);
    }

    #[test]
    fn min_cut_sides() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 3, 0);
        f.add_edge(1, 2, 1, 0); // bottleneck
        f.add_edge(2, 3, 3, 0);
        assert_eq!(f.max_flow(0, 3), 1);
        let src = f.reachable_from(0);
        assert_eq!(src, vec![true, true, false, false]);
        let to_t = f.can_reach(3);
        assert_eq!(to_t, vec![false, false, true, true]);
    }

    #[test]
    fn flow_and_residual_accessors() {
        let mut f = FlowNetwork::new(2);
        let e = f.add_edge(0, 1, 4, 0);
        f.max_flow(0, 1);
        assert_eq!(f.flow(e), 4);
        assert_eq!(f.residual(e), 0);
        assert_eq!(f.residual(e ^ 1), 4);
    }

    #[test]
    fn reset_and_retune() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 10, 0);
        let e = f.add_edge(1, 2, 2, 0);
        assert_eq!(f.max_flow(0, 2), 2);
        f.reset();
        f.set_capacity(e, 6);
        assert_eq!(f.max_flow(0, 2), 6);
    }

    #[test]
    fn residual_graph_dedup() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 1, 0);
        f.add_edge(0, 1, 1, 0);
        f.add_edge(1, 2, 5, 0);
        let rg = f.residual_graph();
        assert_eq!(rg[0], vec![1]);
        assert_eq!(rg[1], vec![2]);
    }

    #[test]
    fn inf_edges_do_not_overflow() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, INF, 0);
        f.add_edge(0, 2, INF, 0);
        f.add_edge(1, 3, 10, 0);
        f.add_edge(2, 3, 20, 0);
        assert_eq!(f.max_flow(0, 3), 30);
    }

    #[test]
    fn larger_random_network_against_ford_fulkerson() {
        // Cross-check Dinic against a simple BFS Ford–Fulkerson on a fixed
        // pseudo-random network.
        let n = 12;
        let mut edges = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 10 < 3 {
                        edges.push((u, v, x % 50));
                    }
                }
            }
        }
        let mut dinic = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            dinic.add_edge(u, v, c, 0);
        }
        let got = dinic.max_flow(0, n - 1);
        assert_eq!(got, ford_fulkerson(n, &edges, 0, n - 1));
    }

    /// Reference implementation: Edmonds–Karp.
    fn ford_fulkerson(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
        let mut cap = vec![vec![0u64; n]; n];
        for &(u, v, c) in edges {
            cap[u][v] += c;
        }
        let mut flow = 0;
        loop {
            let mut parent = vec![usize::MAX; n];
            parent[s] = s;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for v in 0..n {
                    if parent[v] == usize::MAX && cap[u][v] > 0 {
                        parent[v] = u;
                        q.push_back(v);
                    }
                }
            }
            if parent[t] == usize::MAX {
                return flow;
            }
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let u = parent[v];
                bottleneck = bottleneck.min(cap[u][v]);
                v = u;
            }
            let mut v = t;
            while v != s {
                let u = parent[v];
                cap[u][v] -= bottleneck;
                cap[v][u] += bottleneck;
                v = u;
            }
            flow += bottleneck;
        }
    }
}
