//! Integer max-flow and strongly-connected-component machinery.
//!
//! The MPDS paper's densest-subgraph subroutines are all built on minimum
//! cuts in parameterized flow networks (Goldberg's algorithm and its clique /
//! pattern generalizations) plus the structure of *all* minimum cuts, which is
//! read off the strongly connected components of the residual graph under a
//! maximum flow (Picard–Queyranne; paper Appendix A).
//!
//! * [`FlowNetwork`] — adjacency-list flow network over `u64` capacities with
//!   Dinic's algorithm. All densest-subgraph constructions scale capacities
//!   by the density denominator so the arithmetic stays exact.
//! * [`scc`] — iterative Tarjan SCC and the condensation DAG with
//!   descendant/ancestor queries used by the all-densest-subgraph enumerator.

pub mod dinic;
pub mod scc;

pub use dinic::{FlowNetwork, INF};
pub use scc::Condensation;
