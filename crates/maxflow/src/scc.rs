//! Strongly connected components and the condensation DAG.
//!
//! The all-densest-subgraph enumerators decompose the residual graph under a
//! maximum flow into SCCs (paper Line 7 of Algorithms 2 and 4) and then walk
//! *independent component sets* — antichains of the condensation DAG — so
//! this module exposes, besides the component labelling itself, per-component
//! descendant and ancestor sets (paper Def. 9).

/// An iterative Tarjan SCC decomposition plus the condensation DAG.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id of each node.
    pub comp_of: Vec<u32>,
    /// Members of each component (sorted).
    pub members: Vec<Vec<u32>>,
    /// Condensation DAG adjacency: edges from a component to the distinct
    /// components its members point into (deduplicated, no self-loops).
    pub dag: Vec<Vec<u32>>,
}

impl Condensation {
    /// Decomposes the directed graph given as adjacency lists.
    pub fn new(adj: &[Vec<u32>]) -> Self {
        let _n = adj.len();
        let comp_of = tarjan(adj);
        let num = comp_of.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        let mut members = vec![Vec::new(); num];
        for (v, &c) in comp_of.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        let mut dag = vec![Vec::new(); num];
        for (v, outs) in adj.iter().enumerate() {
            let cv = comp_of[v];
            for &w in outs {
                let cw = comp_of[w as usize];
                if cv != cw {
                    dag[cv as usize].push(cw);
                }
            }
        }
        for outs in &mut dag {
            outs.sort_unstable();
            outs.dedup();
        }
        Condensation {
            comp_of,
            members,
            dag,
        }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.members.len()
    }

    /// All components reachable from `c` in the condensation DAG, excluding
    /// `c` itself (paper's `des(C)`).
    pub fn descendants(&self, c: usize) -> Vec<u32> {
        self.reach(c, &self.dag)
    }

    /// All components with a path to `c` (paper's `anc(C)`). Computed against
    /// the reversed DAG, built lazily per query; the enumerator's component
    /// counts are small (residual graphs of core-pruned worlds).
    pub fn ancestors(&self, c: usize, reverse_dag: &[Vec<u32>]) -> Vec<u32> {
        self.reach(c, reverse_dag)
    }

    /// The reversed condensation DAG (for ancestor queries).
    pub fn reverse_dag(&self) -> Vec<Vec<u32>> {
        let mut rev = vec![Vec::new(); self.num_components()];
        for (c, outs) in self.dag.iter().enumerate() {
            for &d in outs {
                rev[d as usize].push(c as u32);
            }
        }
        for outs in &mut rev {
            outs.sort_unstable();
            outs.dedup();
        }
        rev
    }

    fn reach(&self, start: usize, dag: &[Vec<u32>]) -> Vec<u32> {
        let mut seen = vec![false; self.num_components()];
        let mut stack: Vec<u32> = dag[start].to_vec();
        let mut out = Vec::new();
        while let Some(c) = stack.pop() {
            if seen[c as usize] || c as usize == start {
                continue;
            }
            seen[c as usize] = true;
            out.push(c);
            stack.extend_from_slice(&dag[c as usize]);
        }
        out.sort_unstable();
        out
    }
}

/// Iterative Tarjan SCC; returns the component id of each node. Component
/// ids are assigned in reverse topological completion order (Tarjan property:
/// a component is numbered before any component that can reach it).
fn tarjan(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vu = v as usize;
            if (*child as usize) < adj[vu].len() {
                let w = adj[vu][*child as usize];
                *child += 1;
                let wu = w as usize;
                if index[wu] == u32::MAX {
                    index[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pu = p as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
                if low[vu] == index[vu] {
                    // v is the root of a component: pop the stack down to v.
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let c = Condensation::new(&adj);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.members[0], vec![0, 1, 2]);
        assert!(c.dag[0].is_empty());
    }

    #[test]
    fn two_components_with_edge() {
        // {0,1} -> {2,3}
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let c = Condensation::new(&adj);
        assert_eq!(c.num_components(), 2);
        let c01 = c.comp_of[0] as usize;
        let c23 = c.comp_of[2] as usize;
        assert_ne!(c01, c23);
        assert_eq!(c.dag[c01], vec![c23 as u32]);
        assert!(c.dag[c23].is_empty());
        assert_eq!(c.descendants(c01), vec![c23 as u32]);
        assert!(c.descendants(c23).is_empty());
        let rev = c.reverse_dag();
        assert_eq!(c.ancestors(c23, &rev), vec![c01 as u32]);
    }

    #[test]
    fn dag_of_singletons() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 (a diamond DAG).
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let c = Condensation::new(&adj);
        assert_eq!(c.num_components(), 4);
        let c0 = c.comp_of[0] as usize;
        assert_eq!(c.descendants(c0).len(), 3);
        let c3 = c.comp_of[3] as usize;
        let rev = c.reverse_dag();
        assert_eq!(c.ancestors(c3, &rev).len(), 3);
        assert!(c.descendants(c3).is_empty());
    }

    #[test]
    fn tarjan_reverse_topological_numbering() {
        // comp(0) can reach comp(3): Tarjan numbers sink components first.
        let adj = vec![vec![1], vec![], vec![], vec![]];
        let c = Condensation::new(&adj);
        assert!(c.comp_of[1] < c.comp_of[0]);
    }

    #[test]
    fn disconnected_nodes_are_singletons() {
        let adj = vec![vec![], vec![], vec![]];
        let c = Condensation::new(&adj);
        assert_eq!(c.num_components(), 3);
    }

    #[test]
    fn nested_cycles() {
        // 0 <-> 1, 1 -> 2, 2 <-> 3, 3 -> 4.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2, 4], vec![]];
        let c = Condensation::new(&adj);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.comp_of[0], c.comp_of[1]);
        assert_eq!(c.comp_of[2], c.comp_of[3]);
        assert_ne!(c.comp_of[0], c.comp_of[2]);
        let top = c.comp_of[0] as usize;
        assert_eq!(c.descendants(top).len(), 2);
    }

    #[test]
    fn random_graph_components_are_consistent() {
        // Property: u,v share a component iff mutually reachable.
        let n = 30usize;
        let mut adj = vec![Vec::new(); n];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 100 < 8 {
                        adj[u].push(v as u32);
                    }
                }
            }
        }
        let c = Condensation::new(&adj);
        let reach = |s: usize| -> Vec<bool> {
            let mut seen = vec![false; n];
            seen[s] = true;
            let mut st = vec![s];
            while let Some(v) = st.pop() {
                for &w in &adj[v] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        st.push(w as usize);
                    }
                }
            }
            seen
        };
        let reaches: Vec<Vec<bool>> = (0..n).map(reach).collect();
        for u in 0..n {
            for v in 0..n {
                let same = c.comp_of[u] == c.comp_of[v];
                let mutual = reaches[u][v] && reaches[v][u];
                assert_eq!(same, mutual, "nodes {u}, {v}");
            }
        }
    }
}
