//! Vendored shim of the `serde` facade for fully-offline builds.
//!
//! The MPDS crates derive `Serialize`/`Deserialize` on a few plain data
//! types so downstream users can plug in a real serializer, but nothing in
//! the workspace serializes through serde at runtime (wire I/O goes through
//! `ugraph::io`'s explicit edge-list format). This shim therefore provides
//! the two trait names as markers plus a derive macro that emits empty
//! impls, keeping the `#[derive(Serialize, Deserialize)]` annotations
//! compiling verbatim until the real dependency can be restored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
