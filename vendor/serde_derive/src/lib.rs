//! Derive macros for the vendored `serde` shim.
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize` blocks
//! for the derived type. Hand-parses the item header with `proc_macro`
//! alone (no `syn`/`quote` — this workspace builds fully offline). Supports
//! plain (non-generic) structs and enums, which covers every derive site in
//! the workspace; a generic type produces a compile error pointing here.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item, skipping attributes
/// and visibility. Returns `(name, is_generic)`.
fn type_name(input: TokenStream) -> Result<(String, bool), String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            // Skip `#[...]` outer attributes.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                let generic = matches!(
                    tokens.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                return Ok((name, generic));
            }
            // `pub`, `pub(crate)`, etc. — fall through.
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".to_string())
}

fn emit(input: TokenStream, impl_for: &str) -> TokenStream {
    match type_name(input) {
        Ok((name, false)) => impl_for
            .replace("$NAME", &name)
            .parse()
            .expect("generated impl parses"),
        Ok((_, true)) => r#"compile_error!(
            "the vendored serde shim does not support generic types; \
             see vendor/serde_derive/src/lib.rs");"#
            .parse()
            .unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "impl ::serde::Serialize for $NAME {}")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "impl<'de> ::serde::Deserialize<'de> for $NAME {}")
}
