//! Standard generator: xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG (xoshiro256++; Blackman & Vigna 2019).
///
/// Deterministic for a given [`SeedableRng::seed_from_u64`] seed on every
/// platform. Not cryptographically secure, and not stream-compatible with
/// upstream `rand::rngs::StdRng` (which the reproduction never relies on —
/// only on per-seed determinism).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro authors' seeding guidance.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
