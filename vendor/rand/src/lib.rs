//! Vendored subset of the `rand` 0.8 API for fully-offline builds.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! handful of `rand` features the MPDS crates use are re-implemented here
//! behind the same module paths and trait names (`Rng`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`, the `Standard` distribution). The
//! generator behind [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64 —
//! deterministic across platforms for a given `seed_from_u64` value, which is
//! all the reproduction's seeded experiments require. It is NOT a
//! cryptographic generator and makes no attempt to match upstream `StdRng`
//! stream values.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random `u64`s.
///
/// Mirrors `rand_core::RngCore` minus the fallible API.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// A type with a uniform sampler over intervals; mirrors
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range that can be sampled from uniformly.
///
/// The two blanket impls (for `Range<T>` / `RangeInclusive<T>`) let type
/// inference flow from the range literal to the sampled value, exactly as
/// in upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit: f64 = Standard.sample(rng);
                lo + (unit as $t) * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit: f64 = Standard.sample(rng);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
