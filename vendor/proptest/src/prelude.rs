//! One-stop imports for test files, mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
