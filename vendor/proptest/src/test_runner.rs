//! Per-test configuration and deterministic RNG plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// How one generated case ended (distinguishes passes from
/// `prop_assume!` skips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Passed,
    /// A `prop_assume!` precondition rejected the inputs.
    Skipped,
}

/// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic RNG for a named test: seeded from an FNV-1a hash of the
/// test name so failures reproduce across runs and machines. Set
/// `PROPTEST_SEED` to explore alternate streams.
pub fn rng_for(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
