//! Vendored subset of the `proptest` API for fully-offline builds.
//!
//! Implements the pieces the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, uniform
//! range strategies, [`collection::vec`], [`bool::ANY`], a
//! [`test_runner::Config`] with `with_cases`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Semantic differences from upstream, chosen for simplicity:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` and the assertion message, but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's name, so CI failures reproduce locally by default.
//! * `prop_assume!` skips the case without replacement rather than drawing
//!   a fresh one.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the stringified condition (plus optional format args).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}: {}",
                    ::core::stringify!($cond), ::std::format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok($crate::test_runner::CaseOutcome::Skipped);
        }
    };
}

/// Declares property tests over generated inputs, mirroring
/// `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::rng_for(::core::stringify!($name));
            let mut accepted: u32 = 0;
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<
                    $crate::test_runner::CaseOutcome,
                    ::std::string::String,
                > = (|| {
                    $body
                    ::core::result::Result::Ok($crate::test_runner::CaseOutcome::Passed)
                })();
                match outcome {
                    Ok($crate::test_runner::CaseOutcome::Passed) => accepted += 1,
                    Ok($crate::test_runner::CaseOutcome::Skipped) => {}
                    Err(message) => {
                        let mut inputs = ::std::string::String::new();
                        $(inputs.push_str(&::std::format!(
                            "\n    {} = {:?}", ::core::stringify!($arg), $arg));)+
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n  inputs:{}",
                            case + 1, config.cases, message, inputs,
                        );
                    }
                }
            }
            ::std::assert!(
                accepted > 0 || config.cases == 0,
                "proptest {}: prop_assume! rejected all {} cases — the test is vacuous",
                ::core::stringify!($name),
                config.cases,
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}
