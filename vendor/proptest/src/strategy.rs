//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: `f` maps each generated value to a new
    /// strategy that is then sampled.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Tuples of strategies are strategies over tuples (arity 2 and 3 suffice
/// for this workspace).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}
