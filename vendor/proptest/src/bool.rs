//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy type of [`ANY`]: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Generates `true`/`false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}
