//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Element-count specification for [`vec()`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and `size` elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
