//! Vendored subset of the `criterion` 0.5 API for fully-offline builds.
//!
//! Provides just enough surface for the workspace's benches to compile under
//! `cargo bench --no-run` and to produce useful wall-clock numbers when run:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! mean over `sample_size` timed iterations after one warm-up — no outlier
//! analysis, HTML reports, or statistical machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque identity function that inhibits constant-folding of benchmark
/// inputs, same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), "", 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let label = if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    // One warm-up sample, then `samples` timed ones.
    let mut warmup = Bencher::default();
    f(&mut warmup);
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters > 0 {
        let per_iter = b.elapsed / b.iters as u32;
        println!(
            "bench: {label:<50} {per_iter:>12.2?}/iter ({} iters)",
            b.iters
        );
    } else {
        println!("bench: {label:<50} (no iterations)");
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
